"""Scan-chain architecture: per-clock-domain partitioning and balancing.

Table 1 reports "# of Scan Chains" (100 / 106) and "Max. Chain Length"
(104 / 345): the chains are many and short because BIST shift time is
proportional to the longest chain.  Two architectural rules from the paper
shape the construction here:

* chains never mix clock domains -- each chain is shifted by one test clock,
  and each domain has its own PRPG/MISR pair (Fig. 1), so a chain crossing
  domains would re-introduce exactly the skew problem the scheme avoids;
* within a domain, chains are balanced to minimise the maximum length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..netlist.circuit import Circuit


@dataclass
class ScanChain:
    """One scan chain: an ordered list of scan-cell (flop) names."""

    name: str
    clock_domain: str
    cells: list[str] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Number of cells in the chain."""
        return len(self.cells)


@dataclass
class ScanChainArchitecture:
    """The full set of chains for a BIST-ready core."""

    chains: list[ScanChain] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def chain_count(self) -> int:
        """Total number of chains."""
        return len(self.chains)

    @property
    def max_chain_length(self) -> int:
        """Length of the longest chain (the shift-window length in cycles)."""
        return max((chain.length for chain in self.chains), default=0)

    @property
    def total_cells(self) -> int:
        """Total number of scan cells across all chains."""
        return sum(chain.length for chain in self.chains)

    def chains_in_domain(self, domain: str) -> list[ScanChain]:
        """Chains belonging to ``domain``."""
        return [chain for chain in self.chains if chain.clock_domain == domain]

    def domains(self) -> list[str]:
        """Sorted distinct clock domains present in the architecture."""
        return sorted({chain.clock_domain for chain in self.chains})

    def chain_of_cell(self) -> dict[str, tuple[str, int]]:
        """Mapping scan-cell name -> (chain name, position)."""
        mapping: dict[str, tuple[str, int]] = {}
        for chain in self.chains:
            for position, cell in enumerate(chain.cells):
                mapping[cell] = (chain.name, position)
        return mapping

    def as_mapping(self) -> dict[str, list[str]]:
        """Mapping chain name -> ordered cell list (the sequential simulator's format)."""
        return {chain.name: list(chain.cells) for chain in self.chains}

    def statistics(self) -> dict[str, object]:
        """Summary used by reports (Table 1 rows)."""
        per_domain = {
            domain: {
                "chains": len(self.chains_in_domain(domain)),
                "cells": sum(c.length for c in self.chains_in_domain(domain)),
                "max_length": max((c.length for c in self.chains_in_domain(domain)), default=0),
            }
            for domain in self.domains()
        }
        return {
            "chains": self.chain_count,
            "max_chain_length": self.max_chain_length,
            "total_cells": self.total_cells,
            "per_domain": per_domain,
        }


def build_scan_chains(
    circuit: Circuit,
    max_chain_length: Optional[int] = None,
    chains_per_domain: Optional[Mapping[str, int]] = None,
    total_chains: Optional[int] = None,
) -> ScanChainArchitecture:
    """Partition every flop of ``circuit`` into balanced per-domain scan chains.

    Exactly one of the sizing arguments should be given:

    * ``max_chain_length`` -- per domain, use ``ceil(cells / max_chain_length)``
      chains (this mirrors how the shift-window budget drives chain counts),
    * ``chains_per_domain`` -- explicit chain count per domain,
    * ``total_chains`` -- distribute a global chain budget over the domains in
      proportion to their cell counts (at least one chain per domain).

    When none is given, one chain per clock domain is built.

    Cells are assigned to chains of their own domain round-robin after sorting
    by name, which balances lengths to within one cell and is deterministic.
    """
    given = [arg is not None for arg in (max_chain_length, chains_per_domain, total_chains)]
    if sum(given) > 1:
        raise ValueError("give at most one of max_chain_length, chains_per_domain, total_chains")

    domains = circuit.clock_domains()
    cells_by_domain: dict[str, list[str]] = {
        domain: sorted(flop.name for flop in circuit.flops_in_domain(domain))
        for domain in domains
    }

    counts: dict[str, int] = {}
    if chains_per_domain is not None:
        for domain in domains:
            counts[domain] = max(1, int(chains_per_domain.get(domain, 1)))
    elif max_chain_length is not None:
        if max_chain_length <= 0:
            raise ValueError("max_chain_length must be positive")
        for domain in domains:
            cells = len(cells_by_domain[domain])
            counts[domain] = max(1, -(-cells // max_chain_length))
    elif total_chains is not None:
        if total_chains < len(domains):
            raise ValueError("total_chains must be at least the number of clock domains")
        total_cells = sum(len(cells) for cells in cells_by_domain.values()) or 1
        remaining = total_chains
        for index, domain in enumerate(domains):
            if index == len(domains) - 1:
                counts[domain] = remaining
            else:
                share = max(1, round(total_chains * len(cells_by_domain[domain]) / total_cells))
                share = min(share, remaining - (len(domains) - index - 1))
                counts[domain] = share
                remaining -= share
    else:
        for domain in domains:
            counts[domain] = 1

    architecture = ScanChainArchitecture()
    for domain in domains:
        cells = cells_by_domain[domain]
        chain_count = min(counts[domain], max(1, len(cells))) if cells else 0
        chains = [
            ScanChain(name=f"{domain}_chain{i}", clock_domain=domain)
            for i in range(chain_count)
        ]
        for index, cell in enumerate(cells):
            chains[index % chain_count].cells.append(cell)
        architecture.chains.extend(chains)
    return architecture


def verify_chain_architecture(
    circuit: Circuit, architecture: ScanChainArchitecture
) -> list[str]:
    """Structural checks on a chain architecture; returns a list of problems.

    Verified properties: every flop appears in exactly one chain, every chain
    cell exists and is a flop, and no chain mixes clock domains.
    """
    problems: list[str] = []
    seen: dict[str, str] = {}
    for chain in architecture.chains:
        for cell in chain.cells:
            if cell in seen:
                problems.append(f"cell {cell!r} appears in {seen[cell]!r} and {chain.name!r}")
            seen[cell] = chain.name
            if cell not in circuit.gates:
                problems.append(f"chain {chain.name!r} references unknown cell {cell!r}")
                continue
            gate = circuit.gate(cell)
            if not gate.is_flop:
                problems.append(f"chain {chain.name!r} cell {cell!r} is not a flop")
            elif (gate.clock_domain or "clk") != chain.clock_domain:
                problems.append(
                    f"chain {chain.name!r} ({chain.clock_domain}) contains cell "
                    f"{cell!r} from domain {gate.clock_domain!r}"
                )
    missing = set(circuit.flop_names()) - set(seen)
    for cell in sorted(missing):
        problems.append(f"flop {cell!r} is not part of any scan chain")
    return problems
