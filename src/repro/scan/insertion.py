"""Full-scan insertion: the transform that produces the BIST-ready core.

Steps (mirroring Section 2.1 and the notes under Table 1):

1. optionally wrap every primary input and primary output with a scan cell
   ("Scan cells were inserted for all PIs and POs to increase delay fault
   coverage") -- the wrapper cells become ordinary scan cells of a chosen
   clock domain,
2. identify and block X sources,
3. convert every flop to a mux-D scan cell (area accounting only -- the
   functional netlist view is unchanged),
4. partition the cells into balanced per-domain scan chains.

The result bundles the modified circuit, the chain architecture, the scan-cell
records and the area overhead, which is what the top-level LBIST flow and the
Table 1 report consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..netlist.library import CellLibrary
from .chains import ScanChainArchitecture, build_scan_chains, verify_chain_architecture
from .scan_cell import ScanCell, classify_flop, scan_conversion_area
from .x_blocking import XBlockingResult, block_x_sources, identify_x_sources


@dataclass
class ScanInsertionConfig:
    """Options controlling full-scan insertion."""

    #: Wrap primary inputs with scan cells (paper: yes).
    wrap_inputs: bool = True
    #: Wrap primary outputs with scan cells (paper: yes).
    wrap_outputs: bool = True
    #: Clock domain for wrapper cells; ``None`` picks each pin's nearest domain.
    wrapper_clock_domain: Optional[str] = None
    #: Block X sources (paper: required for a valid signature).
    block_x: bool = True
    #: Value X sources are forced to during self-test.
    x_blocked_value: int = 0
    #: Also treat un-wrapped primary inputs as X sources.
    treat_unwrapped_inputs_as_x: bool = False
    #: Target maximum chain length (drives the number of chains per domain).
    max_chain_length: Optional[int] = None
    #: Explicit chain counts per domain (overrides max_chain_length).
    chains_per_domain: Optional[Mapping[str, int]] = None
    #: Global chain budget (used when the other two sizing knobs are absent).
    total_chains: Optional[int] = None


@dataclass
class ScanInsertionResult:
    """Everything produced by :func:`insert_scan`."""

    circuit: Circuit
    architecture: ScanChainArchitecture
    scan_cells: list[ScanCell] = field(default_factory=list)
    wrapper_cells: list[str] = field(default_factory=list)
    x_blocking: Optional[XBlockingResult] = None
    #: Extra area in gate equivalents relative to the original core.
    area_overhead: float = 0.0
    #: Area of the original core (gate equivalents), for overhead percentages.
    original_area: float = 0.0
    problems: list[str] = field(default_factory=list)

    @property
    def overhead_fraction(self) -> float:
        """Area overhead as a fraction of the original core area."""
        if self.original_area <= 0:
            return 0.0
        return self.area_overhead / self.original_area


def _majority_domain(circuit: Circuit, nets: list[str], fallback: str) -> str:
    votes: dict[str, int] = {}
    for net in nets:
        for name in circuit.fanout_cone(net):
            gate = circuit.gate(name)
            if gate.is_flop and gate.clock_domain:
                votes[gate.clock_domain] = votes.get(gate.clock_domain, 0) + 1
    if not votes:
        return fallback
    return max(votes, key=lambda d: (votes[d], d))


def wrap_primary_inputs(
    circuit: Circuit, clock_domain: Optional[str] = None
) -> list[str]:
    """Insert an input wrapper scan cell after every primary input (in place).

    Every consumer of a PI is rewired to the wrapper flop's output, so in scan
    mode the PI value is fully controllable from the chain.  Returns the new
    flop names.
    """
    created: list[str] = []
    domains = circuit.clock_domains() or ["clk"]
    for pi in circuit.primary_inputs:
        # Deduplicate: a gate using the PI on several pins appears once here,
        # and replace_input_net rewires all of its pins in one call.
        consumers = list(dict.fromkeys(circuit.fanout(pi)))
        if not consumers:
            continue
        domain = clock_domain or _majority_domain(circuit, [pi], domains[0])
        name = f"wrap_in_{pi}"
        circuit.add_gate(name, GateType.DFF, [pi], clock_domain=domain, wrapper_cell=True)
        for consumer in consumers:
            if consumer == name:
                continue
            circuit.replace_input_net(consumer, pi, name)
        created.append(name)
    return created


def wrap_primary_outputs(
    circuit: Circuit, clock_domain: Optional[str] = None
) -> list[str]:
    """Insert an output wrapper scan cell observing every primary output (in place)."""
    created: list[str] = []
    domains = circuit.clock_domains() or ["clk"]
    for po in circuit.primary_outputs:
        domain = clock_domain or _majority_domain(circuit, [po], domains[0])
        name = f"wrap_out_{po}"
        if name in circuit.gates:
            continue
        circuit.add_gate(name, GateType.DFF, [po], clock_domain=domain, wrapper_cell=True)
        created.append(name)
    return created


def insert_scan(
    circuit: Circuit,
    config: Optional[ScanInsertionConfig] = None,
    library: Optional[CellLibrary] = None,
) -> ScanInsertionResult:
    """Run full-scan insertion on a *copy* of ``circuit`` and return the result."""
    config = config or ScanInsertionConfig()
    library = library or CellLibrary()
    working = circuit.copy(f"{circuit.name}_scan")
    original_area = circuit.area(library)

    wrapper_cells: list[str] = []
    if config.wrap_inputs:
        wrapper_cells.extend(wrap_primary_inputs(working, config.wrapper_clock_domain))
    if config.wrap_outputs:
        wrapper_cells.extend(wrap_primary_outputs(working, config.wrapper_clock_domain))

    x_result: Optional[XBlockingResult] = None
    if config.block_x:
        sources = identify_x_sources(
            working, include_unwrapped_inputs=config.treat_unwrapped_inputs_as_x
        )
        if sources:
            x_result = block_x_sources(working, sources, config.x_blocked_value)

    architecture = build_scan_chains(
        working,
        max_chain_length=config.max_chain_length,
        chains_per_domain=config.chains_per_domain,
        total_chains=config.total_chains,
    )
    problems = verify_chain_architecture(working, architecture)

    chain_of_cell = architecture.chain_of_cell()
    scan_cells = []
    for flop in working.flops():
        record = classify_flop(flop)
        chain_info = chain_of_cell.get(flop.name)
        if chain_info is not None:
            record = ScanCell(
                flop=record.flop,
                clock_domain=record.clock_domain,
                chain=chain_info[0],
                position=chain_info[1],
                is_wrapper=record.is_wrapper,
                is_observation_point=record.is_observation_point,
            )
        scan_cells.append(record)

    # Area overhead: mux penalty on original flops + full scan cells for the
    # wrappers + blocking gates.
    overhead = scan_conversion_area(working, library)
    overhead += len(wrapper_cells) * library.scan_cell_area()
    if x_result is not None:
        overhead += sum(
            library.area(working.gate(g).gate_type, len(working.gate(g).inputs))
            for g in x_result.blocking_gates
        )

    return ScanInsertionResult(
        circuit=working,
        architecture=architecture,
        scan_cells=scan_cells,
        wrapper_cells=wrapper_cells,
        x_blocking=x_result,
        area_overhead=overhead,
        original_area=original_area,
        problems=problems,
    )
