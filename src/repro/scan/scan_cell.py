"""Scan-cell modelling and bookkeeping.

The BIST-ready core is a full-scan design: every flip-flop is replaced by a
mux-D scan cell (functional D input plus a scan-data input selected by the
scan-enable SE).  The netlist keeps the *functional* view -- a scan cell is
still a DFF gate -- and the scan behaviour (shift path, SE) lives in the
architecture objects, which is how DFT tools treat it too: the shift path is
metadata over the functional netlist.

This module defines the metadata record per scan cell and the area accounting
used for the overhead numbers in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netlist.circuit import Circuit, Gate
from ..netlist.library import CellLibrary


@dataclass(frozen=True)
class ScanCell:
    """Metadata for one scan cell.

    Attributes
    ----------
    flop:
        Name of the underlying DFF gate in the netlist.
    clock_domain:
        Clock domain of the cell.
    chain:
        Name of the scan chain the cell belongs to (assigned by the chain
        architect), ``None`` until chains are built.
    position:
        Position within the chain, 0 = closest to scan-in.
    is_wrapper:
        True for the PI/PO wrapper cells the paper adds ("Scan cells were
        inserted for all PIs and POs to increase delay fault coverage").
    is_observation_point:
        True for cells added by observation test-point insertion.
    """

    flop: str
    clock_domain: str
    chain: Optional[str] = None
    position: Optional[int] = None
    is_wrapper: bool = False
    is_observation_point: bool = False


def classify_flop(gate: Gate) -> ScanCell:
    """Build the :class:`ScanCell` record for a netlist flop from its attributes."""
    return ScanCell(
        flop=gate.name,
        clock_domain=gate.clock_domain or "clk",
        is_wrapper=bool(gate.attributes.get("wrapper_cell")),
        is_observation_point=bool(gate.attributes.get("observation_point")),
    )


def scan_conversion_area(
    circuit: Circuit, library: Optional[CellLibrary] = None
) -> float:
    """Extra area (gate equivalents) of converting every flop into a scan cell.

    Only the mux-D penalty is counted here; the flop itself already exists in
    the functional design.  Wrapper and observation-point cells are *new*
    flops, so their full scan-cell area is charged by the insertion code, not
    here.
    """
    library = library or CellLibrary()
    original_flops = [
        gate
        for gate in circuit.flops()
        if not gate.attributes.get("wrapper_cell")
        and not gate.attributes.get("observation_point")
    ]
    return len(original_flops) * library.scan_cell_area_penalty
