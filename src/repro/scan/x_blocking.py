"""Identification and blocking of unknown-value (X) sources.

The paper requires "a full-scan circuit with unknown value (X) sources
properly blocked" (Section 2.1): any X that reaches the MISR corrupts the
signature and invalidates the whole BIST session.  Typical X sources are
non-scan storage (memories, latches), un-modelled analog/black-box outputs,
and un-wrapped primary inputs driven from outside the core during self-test.

This module provides:

* :func:`identify_x_sources` -- find nets explicitly annotated as X sources
  plus, optionally, primary inputs that are not wrapped by scan cells,
* :func:`x_contaminated_observation_nets` -- which observation nets (MISR
  inputs) an X can actually reach, via three-valued simulation,
* :func:`block_x_sources` -- insert blocking gates (AND with a constant-0 in
  test mode, i.e. a forced known value) in front of every X source so the
  signature stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..simulation.comb_sim import XPropagationSimulator


@dataclass
class XBlockingResult:
    """Outcome of the X-blocking transform."""

    #: X-source nets that were blocked, in processing order.
    blocked_sources: list[str] = field(default_factory=list)
    #: Names of inserted blocking gates (one per blocked source).
    blocking_gates: list[str] = field(default_factory=list)
    #: Observation nets still reachable by an X after blocking (should be empty).
    residual_contamination: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no X can reach any observation net any more."""
        return not self.residual_contamination


def identify_x_sources(
    circuit: Circuit,
    include_unwrapped_inputs: bool = False,
) -> list[str]:
    """Nets that can carry an unknown value during self-test.

    A net is an X source when its driving gate carries the ``x_source``
    attribute (set by the synthetic-core generator for memory/black-box
    outputs).  When ``include_unwrapped_inputs`` is true, primary inputs that
    are not consumed exclusively by wrapper scan cells are included too --
    during pure self-test nothing drives them to a known value.
    """
    sources = [
        gate.name for gate in circuit if gate.attributes.get("x_source")
    ]
    if include_unwrapped_inputs:
        for pi in circuit.primary_inputs:
            consumers = circuit.fanout(pi)
            wrapped = consumers and all(
                circuit.gate(c).attributes.get("wrapper_cell") for c in consumers
            )
            if not wrapped:
                sources.append(pi)
    return sources


def x_contaminated_observation_nets(
    circuit: Circuit,
    x_sources: Sequence[str],
    observe_nets: Optional[Sequence[str]] = None,
    structural: bool = True,
) -> list[str]:
    """Observation nets an X from ``x_sources`` can reach.

    With ``structural=True`` (the default) the check is conservative: any
    observation net in the structural fanout cone of an X source is reported,
    because a corrupted MISR signature is unrecoverable and DFT sign-off
    therefore over-approximates X reachability.  ``structural=False`` uses the
    cheaper two-corner three-valued simulation heuristic instead (useful to
    estimate how often the X would actually show up).
    """
    if not x_sources:
        return []
    observe = list(observe_nets) if observe_nets is not None else circuit.observation_nets()
    if structural:
        # BFS through the combinational fanout, stopping at X-blocking gates
        # (which force a known value) and at flop boundaries.
        reachable = set(x_sources)
        frontier = list(x_sources)
        while frontier:
            current = frontier.pop()
            for successor in circuit.fanout(current):
                if successor in reachable:
                    continue
                gate = circuit.gate(successor)
                if gate.attributes.get("x_blocking"):
                    continue
                reachable.add(successor)
                if not gate.is_flop:
                    frontier.append(successor)
    else:
        simulator = XPropagationSimulator(circuit)
        reachable = simulator.x_reachable_nets(list(x_sources))
        # A stimulus net that *is* an X source contaminates itself if observed.
        reachable.update(set(x_sources))
    return [net for net in observe if net in reachable]


def block_x_sources(
    circuit: Circuit,
    x_sources: Iterable[str],
    blocked_value: int = 0,
    prefix: str = "x_block",
) -> XBlockingResult:
    """Insert blocking gates so no X source reaches downstream logic.

    Each X source net ``n`` gets a blocking gate ``x_block_<i>_<n>`` computing
    ``AND(n, 0)`` (for ``blocked_value=0``) or ``OR(n, 1)`` (for 1); every
    original consumer of ``n`` is rewired to the blocking gate.  In silicon
    the constant would be a test-mode signal so the functional path is
    unaffected outside self-test; for fault-coverage purposes the test-mode
    view (constant) is the relevant one, which is what the netlist models.

    The circuit is modified in place.
    """
    if blocked_value not in (0, 1):
        raise ValueError("blocked_value must be 0 or 1")
    result = XBlockingResult()
    for index, source in enumerate(x_sources):
        if source not in circuit.gates:
            raise KeyError(f"unknown X-source net {source!r}")
        consumers = list(dict.fromkeys(circuit.fanout(source)))
        const_name = f"{prefix}_{index}_const"
        gate_name = f"{prefix}_{index}_{source}"
        if blocked_value == 0:
            circuit.add_gate(const_name, GateType.CONST0, [])
            circuit.add_gate(gate_name, GateType.AND, [source, const_name], x_blocking=True)
        else:
            circuit.add_gate(const_name, GateType.CONST1, [])
            circuit.add_gate(gate_name, GateType.OR, [source, const_name], x_blocking=True)
        for consumer in consumers:
            circuit.replace_input_net(consumer, source, gate_name)
        result.blocked_sources.append(source)
        result.blocking_gates.append(gate_name)

    result.residual_contamination = x_contaminated_observation_nets(
        circuit, result.blocked_sources
    )
    return result


def verify_x_clean(
    circuit: Circuit,
    observe_nets: Optional[Sequence[str]] = None,
    include_unwrapped_inputs: bool = False,
) -> list[str]:
    """Convenience check: which observation nets remain X-contaminated?

    Returns an empty list when the circuit is X-clean (what the BIST-ready
    check in the core flow asserts before hooking up the MISR).
    """
    sources = identify_x_sources(circuit, include_unwrapped_inputs)
    remaining = [
        s
        for s in sources
        if not any(
            circuit.gate(c).attributes.get("x_blocking") for c in circuit.fanout(s)
        ) or not circuit.fanout(s)
    ]
    return x_contaminated_observation_nets(circuit, remaining, observe_nets)
