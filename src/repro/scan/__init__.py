"""Scan / DFT transforms (S7).

Public API:

* :func:`~repro.scan.insertion.insert_scan` with
  :class:`~repro.scan.insertion.ScanInsertionConfig` /
  :class:`~repro.scan.insertion.ScanInsertionResult`,
* :func:`~repro.scan.chains.build_scan_chains`,
  :class:`~repro.scan.chains.ScanChainArchitecture` and
  :func:`~repro.scan.chains.verify_chain_architecture`,
* the X-blocking helpers in :mod:`repro.scan.x_blocking`,
* the scan-cell records in :mod:`repro.scan.scan_cell`.
"""

from .scan_cell import ScanCell, classify_flop, scan_conversion_area
from .x_blocking import (
    XBlockingResult,
    block_x_sources,
    identify_x_sources,
    verify_x_clean,
    x_contaminated_observation_nets,
)
from .chains import (
    ScanChain,
    ScanChainArchitecture,
    build_scan_chains,
    verify_chain_architecture,
)
from .insertion import (
    ScanInsertionConfig,
    ScanInsertionResult,
    insert_scan,
    wrap_primary_inputs,
    wrap_primary_outputs,
)

__all__ = [
    "ScanCell",
    "classify_flop",
    "scan_conversion_area",
    "XBlockingResult",
    "block_x_sources",
    "identify_x_sources",
    "verify_x_clean",
    "x_contaminated_observation_nets",
    "ScanChain",
    "ScanChainArchitecture",
    "build_scan_chains",
    "verify_chain_architecture",
    "ScanInsertionConfig",
    "ScanInsertionResult",
    "insert_scan",
    "wrap_primary_inputs",
    "wrap_primary_outputs",
]
