"""The end-to-end flexible logic BIST flow (the paper's primary contribution).

:class:`LogicBistFlow` ties every subsystem together in the order a real DFT
insertion + sign-off flow would run them:

1. **BIST-ready core preparation** -- full-scan insertion with PI/PO wrapper
   cells, X-source blocking, per-domain scan chains
   (:mod:`repro.core.bist_ready`).
2. **Test point insertion** -- a preliminary random-pattern fault simulation
   (patterns taken from the real PRPG + phase shifter) identifies the
   random-resistant faults, and observation points are chosen from their
   fault-effect profile (:mod:`repro.tpi.observation_points`); no control
   points are used.
3. **Random-pattern BIST phase** -- the STUMPS architecture (one PRPG/MISR
   pair per clock domain) generates the configured number of patterns; fault
   simulation with dropping gives "Fault Coverage 1"; MISR signatures are
   computed for a leading slice of the session.
4. **Top-up ATPG phase** -- PODEM targets the remaining faults, cubes are
   compacted and random-filled, and the patterns are applied through the
   input selector, giving "# of Top-Up Patterns" and "Fault Coverage 2".
   Since the compiled ATPG engine this phase runs kernel-indexed PODEM with
   block-batched candidate screening (``atpg_engine``/``atpg_backtrace``/
   ``topup_block_size`` in :class:`~repro.core.config.LogicBistConfig`),
   and under a pooled scheduler the
   :class:`~repro.campaign.pipeline.TopUpStage` expansion fans PODEM
   targets out across site-local worker shards -- results byte-identical
   to the serial walk either way.
5. **At-speed timing assembly** -- the clock-gating block and the
   double-capture scheduler produce the Fig. 2 capture schedule; optionally a
   launch-on-capture transition-fault simulation quantifies the at-speed test
   quality; the Fig. 3 shift-path analysis checks the PRPG/chain/MISR
   interfaces under the configured phase advance.
6. **Reporting** -- everything Table 1 reports (plus the extras) is gathered
   into :class:`LogicBistResult`, which :mod:`repro.core.report` renders.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..atpg.topup import TopUpResult
from ..bist.stumps import StumpsArchitecture, StumpsDomainConfig
from ..faults.collapse import collapse_stuck_at
from ..faults.fault_list import FaultList
from ..faults.fault_sim import FaultSimulator
from ..faults.transition_sim import derive_capture_patterns
from ..netlist.circuit import Circuit
from ..netlist.library import CellLibrary
from ..netlist.gates import GateType
from ..timing.clocks import ClockTreeModel, make_clock_tree
from ..timing.double_capture import CaptureSchedule, CaptureWindowScheduler
from ..timing.skew_analysis import ShiftPathAnalyzer, ShiftPathParameters, ShiftPathReport
from ..tpi.observability_tpi import ObservabilityGuidedTpi
from ..tpi.observation_points import FaultSimGuidedObservationTpi, ObservationPointPlan
from .bist_ready import BistReadyCore, finalize_with_observation_points
from .config import LogicBistConfig


@dataclass
class PhaseTiming:
    """Compute seconds of one flow phase (the paper reports CPU time).

    Summed over the phase's pipeline stages: on the default serial walk this
    *is* the phase's wall-clock, exactly as before; on a pooled run
    (``pipeline_workers``/``campaign_workers`` >= 2) it sums concurrent
    workers' compute, so the five entries can total more than
    ``LogicBistResult.cpu_time_seconds`` (which stays end-to-end wall).
    """

    name: str
    seconds: float


# --------------------------------------------------------------------- #
# Structure builders (module-level so the sharded campaign runner can
# assemble the exact same STUMPS / clock-tree structures the flow uses)
# --------------------------------------------------------------------- #
def build_shift_path_parameters(config: LogicBistConfig) -> ShiftPathParameters:
    """The flow's Fig. 3 shift-path electrical parameters under ``config``.

    One construction path shared by the parent-side shift-path check and the
    campaign's sharded Monte-Carlo skew stage, so both analyses always agree
    on the compactor depth the chain->MISR interface sees.
    """
    return ShiftPathParameters(
        compactor_depth=0 if not config.use_space_compactor else 3
    )


def build_clock_tree(circuit: Circuit, config: LogicBistConfig) -> ClockTreeModel:
    """The flow's clock-tree model for ``circuit`` under ``config``."""
    frequencies = {
        domain: float(
            config.clock_frequencies_mhz.get(domain, config.default_frequency_mhz)
        )
        for domain in circuit.clock_domains()
    }
    return make_clock_tree(
        frequencies, intra_domain_skew_ns=config.intra_domain_skew_ns
    )


def build_stumps(core: BistReadyCore, config: LogicBistConfig) -> StumpsArchitecture:
    """The flow's STUMPS architecture (one PRPG/MISR pair per clock domain)."""
    domain_configs = []
    for index, domain in enumerate(core.architecture.domains()):
        chains = len(core.architecture.chains_in_domain(domain))
        domain_configs.append(
            StumpsDomainConfig(
                domain=domain,
                prpg_length=config.prpg_length,
                prpg_seed=config.bist_seed + index + 1,
                phase_shifter_seed=config.bist_seed + 100 + index,
                compactor_outputs=(
                    min(config.compacted_misr_length, chains)
                    if config.use_space_compactor
                    else None
                ),
                # The paper's MISRs are never shorter than the 19-bit PRPG
                # (small domains get 19-bit MISRs, the big domain gets one
                # as wide as its chain count); mirror that rule here.
                misr_length=(
                    config.compacted_misr_length
                    if config.use_space_compactor
                    else max(chains, config.prpg_length)
                ),
            )
        )
    return StumpsArchitecture(core.architecture, domain_configs)


def insert_test_points(
    core: BistReadyCore, config: LogicBistConfig
) -> Optional[ObservationPointPlan]:
    """The flow's test-point-insertion phase (phase 2), on a prepared core.

    Mutates ``core`` in place (observation flops become real scan cells) and
    returns the chosen plan, or ``None`` when TPI is disabled.  Module-level
    so the campaign runner performs exactly the same BIST-ready preparation
    the flow does.
    """
    if config.tpi_method == "none" or config.observation_point_budget <= 0:
        return None
    if config.tpi_method == "observability":
        plan = ObservabilityGuidedTpi(
            core.circuit, budget=config.observation_point_budget
        ).select()
    elif config.tpi_method == "fault_sim":
        stumps = build_stumps(core, config)
        patterns = stumps.generate_patterns(config.tpi_profile_patterns)
        fault_list = fresh_fault_list(core.circuit, config)
        simulator = FaultSimulator(
            core.circuit,
            backend=config.sim_backend,
            memory_budget_mb=config.sim_memory_budget_mb,
        )
        simulator.simulate(fault_list, patterns, block_size=config.block_size)
        tpi = FaultSimGuidedObservationTpi(
            core.circuit,
            budget=config.observation_point_budget,
            profile_patterns=min(config.tpi_profile_patterns, 128),
        )
        plan = tpi.select(fault_list, patterns)
    else:
        raise ValueError(f"unknown tpi_method {config.tpi_method!r}")
    if plan.nets:
        finalize_with_observation_points(core, plan, config)
    else:
        core.tpi_plan = plan
    return plan


def fresh_fault_list(circuit: Circuit, config: LogicBistConfig) -> FaultList:
    """The flow's collapsed stuck-at fault universe under ``config``."""
    collapsed = collapse_stuck_at(circuit)
    faults = collapsed.representatives
    if config.exclude_pad_faults:
        faults = [
            fault
            for fault in faults
            if not (
                fault.is_stem
                and circuit.gate(fault.gate).gate_type is GateType.INPUT
            )
        ]
    return FaultList(faults)


def expand_leading_patterns(blocks, count: int) -> list[dict]:
    """Expand the leading ``count`` patterns of a packed block stream."""
    patterns: list[dict] = []
    for block in blocks:
        if len(patterns) >= count:
            break
        take = min(block.num_patterns, count - len(patterns))
        patterns.extend(block.pattern(index) for index in range(take))
    return patterns


def derive_signature_responses(
    circuit: Circuit,
    config: LogicBistConfig,
    patterns: list[dict],
    schedule: Optional[CaptureSchedule] = None,
) -> list[dict[str, int]]:
    """The captured responses of the double-capture window, per pattern.

    Apply the staggered launch pulses, then the capture pulses, and read the
    flop contents that would be shifted into the MISRs.  Input wrapper cells
    capture the (statically driven) pad value at the launch pulse, which is
    exactly how they contribute launch transitions for delay faults.  Shared
    by the flow's signature phase and the campaign's per-domain signature
    shards, so the two can never derive different response streams.
    """
    if schedule is None:
        schedule = CaptureWindowScheduler(build_clock_tree(circuit, config)).schedule()
    pulse_order = schedule.pulse_order
    after_launch = derive_capture_patterns(circuit, patterns, pulse_order)
    after_capture = derive_capture_patterns(circuit, after_launch, pulse_order)
    flop_names = set(circuit.flop_names())
    return [
        {name: captured.get(name, 0) for name in flop_names}
        for captured in after_capture
    ]


def credit_chain_flush(core: BistReadyCore, fault_list: FaultList) -> int:
    """Credit the scan-chain flush (integrity) test.

    Before any BIST pattern is applied, a standard chain flush test shifts
    a known sequence through every chain; a stuck value on any scan cell
    output corrupts everything passing through it, so output-stem faults
    of scan cells are detected by that test.  Commercial flows count this
    coverage, and so does the paper's tool.
    """
    flop_names = set(core.circuit.flop_names())
    credited = 0
    for fault in list(fault_list.undetected()):
        if fault.is_stem and fault.gate in flop_names:
            fault_list.mark_detected(fault, pattern_index=-1)
            credited += 1
    return credited


@dataclass
class LogicBistResult:
    """Everything the flow measured -- the superset of a Table 1 column."""

    core_name: str
    config: LogicBistConfig
    bist_ready: BistReadyCore
    stumps: StumpsArchitecture
    clock_tree: ClockTreeModel
    capture_schedule: CaptureSchedule

    # Structure numbers (Table 1 upper half).
    gate_count: int = 0
    flop_count: int = 0
    scan_chain_count: int = 0
    max_chain_length: int = 0
    clock_domain_count: int = 0
    prpg_count: int = 0
    prpg_length: int = 0
    misr_count: int = 0
    misr_lengths: dict[str, int] = field(default_factory=dict)
    test_point_count: int = 0

    # Coverage numbers (Table 1 lower half).
    total_faults: int = 0
    random_pattern_count: int = 0
    fault_coverage_random: float = 0.0
    top_up_pattern_count: int = 0
    fault_coverage_final: float = 0.0
    area_overhead_fraction: float = 0.0
    cpu_time_seconds: float = 0.0

    # Extras beyond Table 1.
    coverage_curve: list[tuple[int, float]] = field(default_factory=list)
    transition_coverage: Optional[float] = None
    #: Full at-speed measurement (detected/total transition faults, pattern
    #: budget, curve) -- a :class:`~repro.campaign.pipeline.TransitionOutcome`
    #: when ``measure_transition_coverage`` is set, else ``None``.
    transition: Optional[object] = None
    #: Sharded Fig. 3 Monte-Carlo sweep -- a
    #: :class:`~repro.campaign.pipeline.SkewOutcome` when ``skew_trials > 0``.
    skew_sweep: Optional[object] = None
    signatures: dict[str, int] = field(default_factory=dict)
    shift_path_report: Optional[ShiftPathReport] = None
    topup: Optional[TopUpResult] = None
    phase_timings: list[PhaseTiming] = field(default_factory=list)
    tpi_plan: Optional[ObservationPointPlan] = None
    fault_list: Optional[FaultList] = None

    @property
    def coverage_gain_from_topup(self) -> float:
        """Fault-coverage improvement contributed by the top-up patterns."""
        return self.fault_coverage_final - self.fault_coverage_random


class LogicBistFlow:
    """Configuration-driven implementation of the paper's logic BIST scheme.

    Since PR 4 the flow *is* the degenerate serial walk of the campaign
    stage graph (:mod:`repro.campaign.pipeline`): ``run`` wires the
    scenario's phases -- scan prep, TPI, STUMPS/session assembly, fault-sim
    shard fan-out, per-domain MISR signature folds, top-up ATPG, optional
    transition measurement -- into stage nodes and executes them on the
    in-process :class:`~repro.campaign.scheduler.SerialScheduler` (the
    bit-exactness oracle).  With ``pipeline_workers >= 2`` (or the PR-2
    ``campaign_workers`` knob) the *same* graph drains through a
    :class:`~repro.campaign.scheduler.PooledScheduler` worker pool instead:
    one code path, two schedulers.

    Note: the signature folds operate on per-domain copies (as the campaign
    always did), so ``result.stumps`` no longer carries post-fold MISR state
    -- read signatures from ``result.signatures``, the values are identical.
    More generally ``result.stumps`` PRPG/MISR *register state* after ``run``
    is scheduler-dependent (a pooled transition stage advances a worker's
    copy, the serial walk the caller's object); every reported measurement
    is scheduler-invariant, register state was never part of the contract.
    """

    def __init__(self, config: Optional[LogicBistConfig] = None) -> None:
        self.config = config or LogicBistConfig()
        self.library = CellLibrary()

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(self, circuit: Circuit, core_name: Optional[str] = None) -> LogicBistResult:
        """Run the complete flow on ``circuit`` and return the measurements."""
        from ..campaign.pipeline import (
            PHASE_AT_SPEED,
            PHASE_ORDER,
            release_scenario_engines,
            scenario_stage_nodes,
            unique_scenario_key,
        )
        from ..campaign.scheduler import PooledScheduler, SerialScheduler

        config = self.config
        flow_start = time.perf_counter()

        workers = max(config.pipeline_workers, config.campaign_workers)
        if config.campaign_fault_shards is not None:
            fault_shards = config.campaign_fault_shards
        else:
            fault_shards = workers if workers >= 2 else 1
        scenario_key = unique_scenario_key(f"flow:{core_name or circuit.name}")
        nodes, keys = scenario_stage_nodes(
            scenario_key,
            circuit,
            config,
            library=self.library,
            scenario_name=core_name or circuit.name,
            fault_shards=fault_shards,
            include_topup=True,
            include_transition=config.measure_transition_coverage,
        )
        # The flow needs every artifact below, so there is no degraded
        # outcome here: a stage that exhausts config.retry's attempts
        # raises.  Retries themselves (and pooled timeout/crash recovery)
        # still apply.
        scheduler = (
            PooledScheduler(workers, retry_policy=config.retry)
            if workers >= 2
            else SerialScheduler(retry_policy=config.retry)
        )
        try:
            pipeline_run = scheduler.run(nodes)
        finally:
            release_scenario_engines([scenario_key])

        tpi: "TpiOutcome" = pipeline_run.value(keys["tpi"])
        bundle = pipeline_run.value(keys["bundle"])
        random_outcome = pipeline_run.value(keys["fault_sim"])
        signatures: dict[str, int] = pipeline_run.value(keys["signatures"])
        topup_outcome = pipeline_run.value(keys["topup"])
        transition_outcome = (
            pipeline_run.value(keys["transition"])
            if "transition" in keys
            else None
        )
        skew_outcome = (
            pipeline_run.value(keys["skew"]) if "skew" in keys else None
        )

        # The shift-path (Fig. 3) analysis is parent-side: it reads only the
        # clock tree and is far cheaper than a stage round-trip.
        start = time.perf_counter()
        shift_report = self._shift_path_check(bundle.clock_tree)
        shift_seconds = time.perf_counter() - start

        core = bundle.core
        stumps = bundle.stumps
        # Post-top-up detection state: with a pooled scheduler the top-up
        # stage credited its own pickled copy, so the outcome's list -- not
        # the bundle's -- is authoritative either way.
        fault_list = topup_outcome.fault_list

        phase_seconds = pipeline_run.seconds_by_phase()
        phase_seconds[PHASE_AT_SPEED] = (
            phase_seconds.get(PHASE_AT_SPEED, 0.0) + shift_seconds
        )
        timings = [
            PhaseTiming(phase, phase_seconds.get(phase, 0.0))
            for phase in PHASE_ORDER
        ]

        total_seconds = time.perf_counter() - flow_start

        result = LogicBistResult(
            core_name=core_name or circuit.name,
            config=config,
            bist_ready=core,
            stumps=stumps,
            clock_tree=bundle.clock_tree,
            capture_schedule=bundle.capture_schedule,
            gate_count=core.circuit.gate_count(),
            flop_count=core.circuit.flop_count(),
            scan_chain_count=core.architecture.chain_count,
            max_chain_length=core.architecture.max_chain_length,
            clock_domain_count=len(core.circuit.clock_domains()),
            prpg_count=stumps.prpg_count(),
            prpg_length=config.prpg_length,
            misr_count=stumps.misr_count(),
            misr_lengths=stumps.misr_lengths(),
            test_point_count=core.test_point_count,
            total_faults=len(fault_list),
            random_pattern_count=config.random_patterns,
            fault_coverage_random=random_outcome.coverage_random,
            top_up_pattern_count=topup_outcome.result.pattern_count,
            fault_coverage_final=fault_list.coverage(),
            area_overhead_fraction=self._area_overhead(core, stumps),
            cpu_time_seconds=total_seconds,
            coverage_curve=random_outcome.result.coverage_curve,
            transition_coverage=(
                transition_outcome.coverage
                if transition_outcome is not None
                else None
            ),
            transition=transition_outcome,
            skew_sweep=skew_outcome,
            signatures=signatures,
            shift_path_report=shift_report,
            topup=topup_outcome.result,
            phase_timings=timings,
            tpi_plan=tpi.plan,
            fault_list=fault_list,
        )
        return result

    # ------------------------------------------------------------------ #
    # Parent-side analyses
    # ------------------------------------------------------------------ #
    def _shift_path_check(self, clock_tree: ClockTreeModel) -> ShiftPathReport:
        config = self.config
        analyzer = ShiftPathAnalyzer(build_shift_path_parameters(config))
        skew = clock_tree.max_skew_overall()
        return analyzer.analyze(
            chain_clock_arrival_ns=skew + config.bist_clock_advance_ns,
            bist_clock_arrival_ns=skew,
            retiming=True,
        )

    # ------------------------------------------------------------------ #
    # Area accounting
    # ------------------------------------------------------------------ #
    def _bist_logic_area(self, stumps: StumpsArchitecture) -> float:
        """Area of the PRPGs, phase shifters, MISRs, compactors and controller."""
        library = self.library
        dff_area = library.area(GateType.DFF, 1)
        xor_area = library.area(GateType.XOR, 2)
        total = 0.0
        for domain in stumps.domains.values():
            total += domain.prpg.length * dff_area
            total += domain.misr.length * dff_area
            total += domain.misr.length * xor_area  # MISR input XORs
            total += domain.phase_shifter.xor_gate_count() * xor_area
            total += domain.compactor.xor_gate_count() * xor_area
            # Clock gating cell + control per domain (small fixed cost).
            total += 10.0
        # Controller + Boundary-Scan glue (fixed cost, a few hundred gates).
        total += 150.0
        return total

    def _area_overhead(self, core: BistReadyCore, stumps: StumpsArchitecture) -> float:
        original_area = core.scan_result.original_area
        if original_area <= 0:
            return 0.0
        overhead = (
            core.scan_result.area_overhead
            + core.observation_point_area(self.library)
            + self._bist_logic_area(stumps)
        )
        return overhead / original_area
