"""Preparation of the BIST-ready core (Section 2.1).

A *BIST-ready core* is "a full-scan circuit with unknown value (X) sources
properly blocked" plus the observation points chosen by fault simulation.
This module wraps the scan/X-blocking/test-point steps into two calls the flow
uses:

* :func:`prepare_scan_core` -- full-scan insertion + X-blocking + chain
  construction + structural validation,
* :func:`finalize_with_observation_points` -- physically insert the chosen
  observation points (new scan cells) and rebuild the chain architecture so
  the new cells are shifted and observed like any other cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.library import CellLibrary
from ..netlist.validate import validate_circuit
from ..scan.chains import ScanChainArchitecture, build_scan_chains, verify_chain_architecture
from ..scan.insertion import ScanInsertionConfig, ScanInsertionResult, insert_scan
from ..scan.x_blocking import verify_x_clean
from ..tpi.observation_points import ObservationPointPlan, apply_observation_points
from .config import LogicBistConfig


@dataclass
class BistReadyCore:
    """The scan-inserted, X-blocked, test-point-equipped core."""

    original: Circuit
    circuit: Circuit
    scan_result: ScanInsertionResult
    architecture: ScanChainArchitecture
    observation_nets: list[str] = field(default_factory=list)
    observation_flops: list[str] = field(default_factory=list)
    tpi_plan: Optional[ObservationPointPlan] = None

    @property
    def test_point_count(self) -> int:
        """Number of inserted observation points (the paper's "# of Test Points")."""
        return len(self.observation_flops)

    def observation_point_area(self, library: Optional[CellLibrary] = None) -> float:
        """Area of the observation-point scan cells (gate equivalents)."""
        library = library or CellLibrary()
        return self.test_point_count * library.scan_cell_area()


def prepare_scan_core(
    circuit: Circuit, config: LogicBistConfig, library: Optional[CellLibrary] = None
) -> BistReadyCore:
    """Run scan insertion + X blocking and validate the result."""
    scan_config = config.scan
    if (
        scan_config.max_chain_length is None
        and scan_config.chains_per_domain is None
        and scan_config.total_chains is None
        and config.total_scan_chains is not None
    ):
        scan_config = ScanInsertionConfig(**{**scan_config.__dict__})
        scan_config.total_chains = config.total_scan_chains
    result = insert_scan(circuit, scan_config, library)
    if result.problems:
        raise ValueError(
            f"scan insertion produced an inconsistent chain architecture: {result.problems[:3]}"
        )
    report = validate_circuit(result.circuit)
    report.raise_if_errors()
    residual = verify_x_clean(result.circuit)
    if residual:
        raise ValueError(f"X sources still reach observation nets: {residual[:5]}")
    return BistReadyCore(
        original=circuit,
        circuit=result.circuit,
        scan_result=result,
        architecture=result.architecture,
    )


def finalize_with_observation_points(
    core: BistReadyCore,
    plan: ObservationPointPlan,
    config: LogicBistConfig,
) -> BistReadyCore:
    """Insert the selected observation points and rebuild the scan chains."""
    flops = apply_observation_points(core.circuit, plan.nets)
    scan_config = config.scan
    architecture = build_scan_chains(
        core.circuit,
        max_chain_length=scan_config.max_chain_length,
        chains_per_domain=scan_config.chains_per_domain,
        total_chains=scan_config.total_chains or config.total_scan_chains,
    )
    problems = verify_chain_architecture(core.circuit, architecture)
    if problems:
        raise ValueError(f"chain rebuild after TPI failed: {problems[:3]}")
    core.architecture = architecture
    core.observation_nets = list(plan.nets)
    core.observation_flops = flops
    core.tpi_plan = plan
    return core
