"""End-to-end logic BIST flow (S10).

Public API:

* :class:`~repro.core.config.LogicBistConfig` -- every knob of the flow,
* :class:`~repro.core.flow.LogicBistFlow` / :class:`~repro.core.flow.LogicBistResult`
  -- the paper's scheme end to end,
* :func:`~repro.core.bist_ready.prepare_scan_core` and
  :class:`~repro.core.bist_ready.BistReadyCore`,
* :func:`~repro.core.report.build_table1_report` and
  :func:`~repro.core.report.coverage_shape_checks`.
"""

from .config import LogicBistConfig
from .bist_ready import BistReadyCore, finalize_with_observation_points, prepare_scan_core
from .flow import LogicBistFlow, LogicBistResult, PhaseTiming
from .report import (
    Table1Report,
    Table1Row,
    TABLE1_LABELS,
    build_table1_report,
    coverage_shape_checks,
)

__all__ = [
    "LogicBistConfig",
    "BistReadyCore",
    "finalize_with_observation_points",
    "prepare_scan_core",
    "LogicBistFlow",
    "LogicBistResult",
    "PhaseTiming",
    "Table1Report",
    "Table1Row",
    "TABLE1_LABELS",
    "build_table1_report",
    "coverage_shape_checks",
]
