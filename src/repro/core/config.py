"""Configuration of the end-to-end logic BIST flow."""

from __future__ import annotations

import random
import re
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..scan.insertion import ScanInsertionConfig
from ..simulation.packed import DEFAULT_BLOCK_SIZE

#: The per-invocation nonce :func:`repro.campaign.runner._unique_key` embeds
#: in campaign stage keys (``@<pid>.<counter>``).  Resilience machinery that
#: must be deterministic *across* runs -- retry jitter, chaos injection
#: plans, canonical failure records -- strips it first.
_STAGE_KEY_NONCE = re.compile(r"@\d+\.\d+")


def canonical_stage_key(key: str) -> str:
    """``key`` with any per-run ``@<pid>.<n>`` nonce removed.

    Service-tier stage keys (``<job>/s0:name/tpi``) are already canonical;
    runner/flow keys (``s0:name@1234.7/tpi``) are not.  Both map to a stable
    form here, so seeded jitter and chaos plans hit the same stages whichever
    tier built the graph.
    """
    return _STAGE_KEY_NONCE.sub("", key)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-stage retry/timeout policy of the campaign schedulers.

    The default policy (``max_attempts=1``, no timeout) reproduces the
    pre-resilience behavior exactly: one attempt, any stage exception is
    terminal.  Everything here is deterministic by construction -- backoff
    jitter is seeded per *canonical* stage key and attempt number, so the
    serial oracle and every pooled schedule replay identical retry
    sequences (:func:`delay_for` never consults global RNG state).

    Classification: ``KeyboardInterrupt``, ``SystemExit`` and any other
    non-``Exception`` ``BaseException`` are *always* fatal -- they abort the
    whole schedule immediately and are never retried, regardless of
    ``retryable_errors``.  Among ordinary exceptions, ``fatal_errors`` wins
    over ``retryable_errors``.
    """

    #: Total attempts per stage (1 = no retries).
    max_attempts: int = 1
    #: First retry delay in seconds (0 disables backoff sleeps entirely).
    backoff_base_s: float = 0.05
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay.
    backoff_max_s: float = 2.0
    #: +/- fraction of the delay drawn from the per-stage-key seeded RNG.
    jitter_fraction: float = 0.1
    #: Seed of the deterministic jitter stream.
    seed: int = 0
    #: Soft per-stage timeout (seconds) enforced by the pooled scheduler's
    #: completion loop: a stage past its deadline has its worker terminated
    #: and counts as a failed attempt.  ``None`` disables timeouts.  The
    #: serial scheduler cannot preempt a running stage, so there the timeout
    #: only shapes injected-chaos ``hang`` faults (kept consistent so serial
    #: remains the oracle for chaos replays).
    stage_timeout_s: Optional[float] = None
    #: Pooled completion-loop heartbeat (seconds): the longest the parent
    #: waits on results before polling worker health and stage deadlines.
    heartbeat_s: float = 0.25
    #: Exception types eligible for retry (subject to ``fatal_errors``).
    retryable_errors: tuple = (Exception,)
    #: Exception types never retried even if listed as retryable.
    fatal_errors: tuple = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        if self.stage_timeout_s is not None and self.stage_timeout_s <= 0:
            raise ValueError("stage_timeout_s must be positive or None")
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")

    def retryable(self, error: BaseException) -> bool:
        """May ``error`` consume another attempt?  (Fatal classes never.)"""
        if isinstance(error, (KeyboardInterrupt, SystemExit)):
            return False
        if not isinstance(error, Exception):
            return False
        if self.fatal_errors and isinstance(error, tuple(self.fatal_errors)):
            return False
        return isinstance(error, tuple(self.retryable_errors))

    def delay_for(self, stage_key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``stage_key``.

        Exponential in ``attempt``, capped, with deterministic jitter from a
        private RNG seeded by ``(seed, canonical stage key, attempt)`` --
        identical for the same stage whichever scheduler (or run) asks.
        """
        if self.backoff_base_s <= 0:
            return 0.0
        delay = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if self.jitter_fraction > 0:
            rng = random.Random(
                f"{self.seed}:{canonical_stage_key(stage_key)}:{attempt}"
            )
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class LogicBistConfig:
    """Every knob of the flexible logic BIST flow (Fig. 1 + Section 3 notes).

    The defaults mirror the paper's application choices: PI/PO wrapper cells,
    one 19-bit PRPG and one MISR per clock domain, no space compactor in front
    of the MISR, observation-only test points chosen by fault simulation, and
    a random phase followed by top-up ATPG.
    """

    # ------------------------------------------------------------------ #
    # Scan architecture
    # ------------------------------------------------------------------ #
    #: Scan-insertion options (PI/PO wrapping, X-blocking, chain sizing).
    scan: ScanInsertionConfig = field(default_factory=ScanInsertionConfig)
    #: Global scan-chain budget used when the scan config does not size chains.
    total_scan_chains: Optional[int] = 16

    # ------------------------------------------------------------------ #
    # STUMPS structure
    # ------------------------------------------------------------------ #
    #: PRPG length (the paper uses 19-bit PRPGs for both cores).
    prpg_length: int = 19
    #: Use a space compactor in front of each MISR.  The paper explicitly does
    #: not (to avoid chain->MISR setup violations); the ablation flips this.
    use_space_compactor: bool = False
    #: MISR length when a space compactor *is* used.
    compacted_misr_length: int = 19
    #: Seed controlling PRPG seeds and phase-shifter construction.
    bist_seed: int = 1

    # ------------------------------------------------------------------ #
    # Test points
    # ------------------------------------------------------------------ #
    #: Observation-point budget (the paper inserts 1 K observe-only points).
    observation_point_budget: int = 16
    #: TPI method: "fault_sim" (the paper) or "observability" (baseline) or "none".
    tpi_method: str = "fault_sim"
    #: Patterns used for the preliminary fault simulation that guides TPI.
    tpi_profile_patterns: int = 256

    # ------------------------------------------------------------------ #
    # Pattern budgets
    # ------------------------------------------------------------------ #
    #: Random (PRPG) patterns for the main BIST session (paper: 20 K).
    random_patterns: int = 2048
    #: Upper bound on top-up ATPG targets (None = every remaining fault).
    #: When the cap drops targets, the count lands in
    #: ``TopUpResult.skipped_targets`` -- a capped run is never silent.
    topup_max_faults: Optional[int] = None
    #: PODEM backtrack limit for top-up ATPG.
    topup_backtrack_limit: int = 100
    #: Merge compatible top-up cubes before scan-in (static compaction).
    topup_compaction: bool = True
    #: Seed for top-up random fill.
    topup_seed: int = 2005
    #: ATPG implication engine: ``"compiled"`` (kernel-indexed incremental
    #: implication + block-batched candidate screening, the default) or
    #: ``"reference"`` (the name-keyed oracle walk, preserved for
    #: differential testing and benchmarking).  Both produce bit-identical
    #: cubes, patterns and fault dispositions.
    atpg_engine: str = "compiled"
    #: PODEM backtrace heuristic: ``"first_x"`` (classical deterministic
    #: first-X-input descent, identical to the reference engine) or
    #: ``"scoap"`` (SCOAP-guided easiest-to-justify descent; guidance tables
    #: are computed once per compiled kernel and shared across faults).
    atpg_backtrace: str = "first_x"
    #: Screening block width for top-up candidate patterns (patterns
    #: buffered per PPSFP retirement scan).  ``None`` follows ``block_size``.
    topup_block_size: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Clocking
    # ------------------------------------------------------------------ #
    #: Functional frequency per clock domain (MHz).  Domains missing from the
    #: mapping default to ``default_frequency_mhz``.
    clock_frequencies_mhz: Mapping[str, float] = field(default_factory=dict)
    default_frequency_mhz: float = 250.0
    #: Worst-case intra-domain clock skew (ns) used by the capture scheduler.
    intra_domain_skew_ns: float = 0.1
    #: Phase advance (ns) of the PRPG/MISR clock versus the scan-chain clock
    #: (the Fig. 3 technique).
    bist_clock_advance_ns: float = 0.5

    # ------------------------------------------------------------------ #
    # Measurement options
    # ------------------------------------------------------------------ #
    #: Also run launch-on-capture transition-fault simulation (at-speed value).
    #: Honoured by the flow *and* by campaign scenarios: the scenario graph
    #: grows the transition stages and the canonical report gains a
    #: ``transition`` section (coverage, detected/total faults, pattern
    #: budget) whenever this is set.
    measure_transition_coverage: bool = False
    #: Patterns used for the transition-coverage measurement.
    transition_patterns: int = 256
    #: Monte-Carlo shift-path skew trials (the Fig. 3 sweep) run per
    #: scenario; 0 disables the sweep.  Trials are trial-index-seeded
    #: (:func:`~repro.timing.skew_analysis.sample_shift_path_report`), so
    #: campaign shards partition the index range freely and the merged
    #: counters are identical at any shard/worker count.
    skew_trials: int = 0
    #: Chain-clock arrival range (ns) the skew trials sample uniformly.
    skew_range_ns: float = 2.0
    #: Seed of the trial-indexed skew sampling.
    skew_seed: int = 2005
    #: Compute per-domain MISR signatures for this many leading random patterns
    #: (0 disables signature emulation; coverage never depends on it).
    signature_patterns: int = 64
    #: Exclude faults on primary-input pad nets (outside the wrapped core).
    exclude_pad_faults: bool = True
    #: Fault-simulation block width: patterns packed per bigint word.  Any
    #: width works (coverage results are block-size invariant); wider blocks
    #: (256 / 1024) amortise the compiled kernel's interpreter loop over more
    #: patterns per pass at the cost of wider bigint operands.
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Simulation execution backend: ``"python"`` (default; bigint
    #: interpreter, always available, the bit-exactness oracle) or
    #: ``"numpy"`` (uint64 bit-plane arrays with level-batched gate
    #: evaluation and a fault-vectorised PPSFP scan -- several times faster
    #: on fault-simulation campaigns, results bit-identical; requires the
    #: optional NumPy dependency, ``pip install "repro[fast]"``, and raises
    #: a clear error when it is absent).  Applies to the TPI profiling
    #: simulation, the random-pattern phase (streamed pattern generation
    #: included), the transition-coverage measurement and -- via the shard
    #: payloads -- every campaign worker.
    sim_backend: str = "python"
    #: Peak fault-scan memory budget in MB for the ``"numpy"`` backend (None
    #: = unbounded, the historical behavior).  The vectorised PPSFP scan
    #: tiles the live fault set into groups whose union-cone slot demand
    #: fits the budget and recycles one slot arena across the tiles, so
    #: peak slot-table + workspace bytes per block width stay under this
    #: ceiling instead of growing with total cone size -- results remain
    #: bit-identical to the unbounded scan and the python oracle at any
    #: budget (tiling only changes *when* rows are computed, never what).
    #: Campaign shard payloads carry the budget, so every worker honors it.
    #: Ignored by the ``"python"`` backend (the bigint interpreter has no
    #: slot table); setting it there emits a :class:`UserWarning`.
    sim_memory_budget_mb: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Sharded campaign execution
    # ------------------------------------------------------------------ #
    #: Worker processes for the random-phase fault simulation.  0 or 1 keeps
    #: the serial compiled-kernel path (the default and the bit-exactness
    #: oracle); >= 2 fans the collapsed fault list out across
    #: ``multiprocessing`` workers via :mod:`repro.campaign` -- results are
    #: bit-identical to the serial path by construction (and by test).
    campaign_workers: int = 0
    #: Fault shards for the campaign path (None = one shard per worker).
    campaign_fault_shards: Optional[int] = None
    #: Worker processes draining the flow's *stage graph* (scan prep, TPI
    #: profiling, STUMPS/session assembly, fault-sim shards, signature
    #: derivation + folds, top-up, transition measurement).  0 or 1 walks
    #: the graph serially in-process (the default and the bit-exactness
    #: oracle); >= 2 drains the same graph through a
    #: :class:`~repro.campaign.scheduler.PooledScheduler` pool, so scenario
    #: *preparation* becomes pooled work alongside the shard scans.  The
    #: flow uses ``max(pipeline_workers, campaign_workers)`` as its pool
    #: width, keeping the PR-2 knob working unchanged; results are
    #: bit-identical to the serial walk by construction (and by test).
    #: :class:`~repro.campaign.runner.CampaignRunner` manages its own pool
    #: and ignores this field.
    pipeline_workers: int = 0
    #: Run the deterministic ATPG top-up phase inside campaign scenarios
    #: (:class:`~repro.campaign.runner.CampaignRunner`): PODEM target shards
    #: fan out through the campaign pool (site-local keyed round-robin) and
    #: a deterministic screen/compact replay merges the cubes, so reported
    #: coverage and first detections include the top-up patterns and stay
    #: byte-identical across worker counts.  The flow always runs top-up;
    #: this knob only gates the campaign runner's scenarios.
    campaign_topup: bool = False

    # ------------------------------------------------------------------ #
    # Fault tolerance
    # ------------------------------------------------------------------ #
    #: Stage retry/timeout policy applied by the flow's schedulers (and used
    #: as the default by :class:`~repro.campaign.runner.CampaignRunner`).
    #: ``None`` keeps the single-attempt policy.  Retries are replayed
    #: identically by the serial oracle and every pooled schedule, so the
    #: policy is byte-invisible on runs that eventually succeed.
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.sim_memory_budget_mb is not None:
            if self.sim_memory_budget_mb <= 0:
                raise ValueError(
                    "sim_memory_budget_mb must be positive, got "
                    f"{self.sim_memory_budget_mb!r}"
                )
            if self.sim_backend == "python":
                warnings.warn(
                    "sim_memory_budget_mb only bounds the numpy fault scan; "
                    'the "python" backend ignores it',
                    UserWarning,
                    stacklevel=2,
                )


@dataclass
class ServiceConfig:
    """Tuning knobs of the long-lived :class:`~repro.service.CampaignService`.

    None of these affect result *content* -- checkpoints, event chunking and
    caching are byte-invisible by construction (and by the crash-injection /
    stream-replay suites under ``tests/service``).
    """

    #: Persist a job checkpoint after every N completed stages (1 = after
    #: every stage, the tightest resume granularity; larger values trade
    #: re-executed stages on resume for fewer pickle writes).
    checkpoint_every: int = 1
    #: Maximum coverage-curve points per streamed ``CoverageDelta`` event;
    #: longer curves are split into consecutive chunks (the reassembled
    #: curve is chunking-invariant).
    event_chunk: int = 32
    #: Capacity of the service-tier prepared-scenario cache
    #: (:class:`~repro.service.cache.ScenarioPrepCache`): distinct
    #: (circuit revision, config) pairs whose scan-inserted + TPI-profiled
    #: cores -- and therefore their shared compiled kernels and
    #: ``analysis_cache`` entries -- stay warm across jobs.
    kernel_cache_size: int = 8
    #: Completed/failed jobs whose in-memory records (event logs, results)
    #: the service retains for late subscribers before discarding the
    #: oldest (checkpointed reports on disk are never discarded).
    retain_jobs: int = 16
    #: Submissions allowed to wait in the queue before ``submit`` raises
    #: (0 = unbounded).
    max_queue_depth: int = 0
    #: Stage retry/timeout policy of service jobs (``None`` = the default
    #: single-attempt :class:`RetryPolicy`).
    retry: Optional[RetryPolicy] = None
    #: Quarantine a scenario whose stage exhausts its retries -- cancel only
    #: its descendant stages, let sibling scenarios finish, and finish the
    #: job in the ``"partial"`` state with a canonical ``failures`` report
    #: section -- instead of failing the whole job.
    degrade_scenarios: bool = True
    #: Default wall-clock budget per job, seconds (``None`` = unbounded;
    #: per-submit override wins).  An over-deadline job is cooperatively
    #: stopped at the next stage boundary, checkpointed, and finishes in
    #: the ``"timeout"`` terminal state -- composing with (not replacing)
    #: the per-*stage* deadlines of :attr:`retry`.
    job_deadline_s: Optional[float] = None
    #: Crash-loop guard: a checkpointed job recovered (i.e. found pending
    #: and actually *started*) more than this many times is quarantined --
    #: spec and partial progress kept on disk, terminal ``"quarantined"``
    #: state -- instead of re-enqueued, so one poison job cannot take the
    #: service down on every restart.
    max_resume_attempts: int = 3

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.event_chunk < 1:
            raise ValueError("event_chunk must be >= 1")
        if self.kernel_cache_size < 1:
            raise ValueError("kernel_cache_size must be >= 1")
        if self.retain_jobs < 0:
            raise ValueError("retain_jobs must be >= 0")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.job_deadline_s is not None and self.job_deadline_s <= 0:
            raise ValueError("job_deadline_s must be positive (or None)")
        if self.max_resume_attempts < 0:
            raise ValueError("max_resume_attempts must be >= 0")
