"""Table 1 style reporting.

Turns a :class:`~repro.core.flow.LogicBistResult` into the same rows the paper
prints for Core X and Core Y, optionally side by side with the paper's
published numbers (carried by the core recipes) so EXPERIMENTS.md and the
benchmark harness can show "paper vs. reproduced" at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from .flow import LogicBistResult


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if 0.0 <= value <= 1.0:
            return f"{value * 100:.2f}%"
        return f"{value:.2f}"
    if isinstance(value, dict):
        return " / ".join(f"{k}: {v}" for k, v in value.items())
    return str(value)


@dataclass
class Table1Row:
    """One row of the Table 1 style report."""

    label: str
    measured: object
    paper: Optional[object] = None


@dataclass
class Table1Report:
    """The full report for one core."""

    core_name: str
    rows: list[Table1Row] = field(default_factory=list)

    def row(self, label: str) -> Table1Row:
        """Lookup a row by its label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r}")

    def to_text(self) -> str:
        """Render as a fixed-width text table."""
        has_paper = any(row.paper is not None for row in self.rows)
        label_width = max(len(row.label) for row in self.rows)
        measured_width = max(len(_format_value(row.measured)) for row in self.rows)
        lines = [f"Table 1 reproduction -- {self.core_name}"]
        header = f"{'Metric'.ljust(label_width)}  {'Measured'.ljust(measured_width)}"
        if has_paper:
            header += "  Paper"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            line = (
                f"{row.label.ljust(label_width)}  "
                f"{_format_value(row.measured).ljust(measured_width)}"
            )
            if has_paper:
                line += f"  {_format_value(row.paper) if row.paper is not None else '-'}"
            lines.append(line)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """Measured values keyed by row label (used by the benchmarks)."""
        return {row.label: row.measured for row in self.rows}


#: Row labels in the order Table 1 prints them.
TABLE1_LABELS: Sequence[str] = (
    "Gate Count",
    "# of FFs",
    "# of Scan Chains",
    "Max. Chain Length",
    "# of Clock Domains",
    "Frequency",
    "# of PRPGs",
    "PRPG Length",
    "# of MISRs",
    "MISR Length",
    "# of Test Points",
    "# of Random Patterns",
    "Fault Coverage 1",
    "CPU Time",
    "Overhead",
    "# of Top-Up Patterns",
    "Fault Coverage 2",
)


def build_table1_report(
    result: LogicBistResult, paper_reference: Optional[Mapping[str, object]] = None
) -> Table1Report:
    """Assemble the Table 1 rows from a flow result."""
    paper = paper_reference or {}
    frequencies = sorted(
        {
            round(result.clock_tree.domain(name).frequency_mhz)
            for name in result.clock_tree.domain_names()
        },
        reverse=True,
    )
    frequency_text = (
        f"{frequencies[0]}MHz" if len(frequencies) == 1 else
        f"{frequencies[0]}-{frequencies[-1]}MHz"
    )
    misr_lengths = result.misr_lengths
    length_histogram: dict[int, int] = {}
    for length in misr_lengths.values():
        length_histogram[length] = length_histogram.get(length, 0) + 1
    misr_text = " / ".join(
        f"{count}: {length}" for length, count in sorted(length_histogram.items(), reverse=True)
    )

    def paper_value(key: str) -> Optional[object]:
        return paper.get(key)

    rows = [
        Table1Row("Gate Count", result.gate_count, paper_value("gate_count")),
        Table1Row("# of FFs", result.flop_count, paper_value("flip_flops")),
        Table1Row("# of Scan Chains", result.scan_chain_count, paper_value("scan_chains")),
        Table1Row("Max. Chain Length", result.max_chain_length, paper_value("max_chain_length")),
        Table1Row("# of Clock Domains", result.clock_domain_count, paper_value("clock_domains")),
        Table1Row("Frequency", frequency_text, paper_value("frequency_mhz")),
        Table1Row("# of PRPGs", result.prpg_count, paper_value("prpgs")),
        Table1Row("PRPG Length", result.prpg_length, paper_value("prpg_length")),
        Table1Row("# of MISRs", result.misr_count, paper_value("misrs")),
        Table1Row("MISR Length", misr_text, paper_value("misr_lengths")),
        Table1Row(
            "# of Test Points",
            f"{result.test_point_count} (Obv-Only)",
            paper_value("test_points"),
        ),
        Table1Row("# of Random Patterns", result.random_pattern_count, paper_value("random_patterns")),
        Table1Row("Fault Coverage 1", result.fault_coverage_random, paper_value("fault_coverage_1")),
        Table1Row("CPU Time", f"{result.cpu_time_seconds:.1f}s", paper_value("cpu_time")),
        Table1Row("Overhead", result.area_overhead_fraction, paper_value("area_overhead")),
        Table1Row("# of Top-Up Patterns", result.top_up_pattern_count, paper_value("top_up_patterns")),
        Table1Row("Fault Coverage 2", result.fault_coverage_final, paper_value("fault_coverage_2")),
    ]
    return Table1Report(core_name=result.core_name, rows=rows)


def coverage_shape_checks(
    result: LogicBistResult, paper_reference: Optional[Mapping[str, object]] = None
) -> dict[str, bool]:
    """Qualitative agreement checks between the reproduction and the paper.

    Absolute coverage numbers depend on circuit size and pattern budget; what
    must reproduce is the *shape* of the result:

    * random patterns leave a coverage gap (FC1 noticeably below 100 %),
    * top-up ATPG closes most of that gap (FC2 > FC1),
    * the number of top-up patterns is small compared to the random budget,
    * the area overhead stays in the single-digit percent range.
    """
    # Proven-redundant (untestable) faults -- mostly artifacts of the X-blocking
    # constants in the synthetic cores -- cannot be detected by any scheme, so
    # the "high final coverage" check accepts either a high raw coverage or a
    # high test efficiency (detected / testable), the figure commercial reports
    # quote alongside raw coverage.
    test_efficiency = (
        result.fault_list.coverage(exclude_untestable=True)
        if result.fault_list is not None
        else result.fault_coverage_final
    )
    checks = {
        "random_coverage_below_final": result.fault_coverage_random < result.fault_coverage_final,
        "final_coverage_high": (
            result.fault_coverage_final >= 0.9 or test_efficiency >= 0.93
        ),
        "topup_is_small_fraction": (
            result.top_up_pattern_count <= max(1, result.random_pattern_count // 4)
        ),
        "overhead_single_digit_percent": result.area_overhead_fraction < 0.15,
        "one_prpg_misr_pair_per_domain": (
            result.prpg_count == result.clock_domain_count
            and result.misr_count == result.clock_domain_count
        ),
        "at_speed_schedule_valid": result.capture_schedule.validate() == [],
    }
    if paper_reference:
        paper_gain = float(paper_reference.get("fault_coverage_2", 1.0)) - float(
            paper_reference.get("fault_coverage_1", 0.9)
        )
        checks["topup_gain_same_order_as_paper"] = (
            result.coverage_gain_from_topup >= paper_gain / 4
        )
    return checks
