"""Small built-in benchmark circuits used by tests and examples.

These are tiny, well-understood circuits (the ISCAS-85 c17, a small
ISCAS-89-style sequential circuit, and a parameterised random-resistant
comparator core) that exercise the tool chain end to end without the cost of a
full synthetic CPU core.
"""

from __future__ import annotations

from ..netlist.bench_format import parse_bench_text
from ..netlist.builder import CircuitBuilder
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType

#: The ISCAS-85 c17 benchmark (6 NAND gates).
C17_BENCH = """
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""

#: A small s27-like sequential benchmark with three flops (single clock).
S27_LIKE_BENCH = """
# s27-like sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = NOT(G10)
G6 = NOT(G11)
G7 = NOT(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G7)
G9 = NAND(G16, G15)
G12 = NOR(G1, G5)
G13 = NOR(G2, G12)
G17 = NOT(G9)
G10 = DFF(G14)
G11 = DFF(G9)
G18 = DFF(G13)
"""


def c17() -> Circuit:
    """The ISCAS-85 c17 benchmark circuit."""
    return parse_bench_text(C17_BENCH, name="c17")


def s27_like() -> Circuit:
    """A small sequential benchmark in the style of ISCAS-89 s27."""
    return parse_bench_text(S27_LIKE_BENCH, name="s27_like")


def comparator_core(width: int = 12, easy_outputs: int = 4, name: str = "cmp_core") -> Circuit:
    """A two-domain core dominated by a random-resistant wide comparator.

    The comparator output gates a small XOR cloud, so most of the cloud's
    faults are random-resistant; a handful of directly-observable XOR outputs
    provide the random-easy population.  This is the canonical shape for
    demonstrating the paper's test-point insertion and top-up ATPG in tests
    and examples without a full synthetic CPU core.
    """
    builder = CircuitBuilder(name=name)
    left = builder.inputs(width, prefix="l")
    right = builder.inputs(width, prefix="r")
    data = builder.inputs(max(2, easy_outputs), prefix="d")
    match = builder.equality_comparator(left, right)
    cloud = [
        builder.xor(data[i], data[(i + 1) % len(data)], name=f"cloud{i}")
        for i in range(len(data))
    ]
    gated = [builder.and_(net, match, name=f"gated{i}") for i, net in enumerate(cloud)]
    merged = builder.tree(GateType.OR, gated, prefix="merge")
    state = builder.flop(merged, name="state_a", clock_domain="clkA")
    cross = builder.xor(state, data[0], name="cross")
    state_b = builder.flop(cross, name="state_b", clock_domain="clkB")
    builder.output(state_b)
    for i in range(easy_outputs):
        builder.output(cloud[i % len(cloud)])
    return builder.build()
