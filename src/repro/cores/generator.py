"""Parameterised synthetic "CPU-like" IP core generator.

The paper evaluates its logic BIST scheme on two commercial CPU IP cores that
are not available (and would be far beyond what a pure-Python fault simulator
can chew through).  This generator produces structurally comparable cores at a
configurable scale:

* several clock domains, each with register banks and pipeline stages,
* datapath blocks (ripple adders, XOR clouds, multiplexer trees) that are easy
  for random patterns,
* *random-pattern-resistant* blocks -- wide equality comparators and deep
  AND/OR decode cones -- whose detection probability under random stimulus is
  tiny, so that test-point insertion and top-up ATPG have exactly the job they
  have on a real CPU core (address comparators, exception conditions, ...),
* cross-clock-domain links (pipeline registers fed from another domain), the
  reason the paper uses one PRPG/MISR pair per domain and staggered capture,
* optional X sources (modelled memory read ports) that the X-blocking step has
  to neutralise.

Everything is driven by an explicit seed, so every experiment is reproducible
bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..netlist.builder import CircuitBuilder
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType


@dataclass
class SyntheticCoreConfig:
    """Knobs of the synthetic core generator.

    The defaults produce a small two-domain core suitable for unit tests; the
    Table 1 recipes (:mod:`repro.cores.recipes`) scale these up.
    """

    name: str = "synthetic_core"
    #: Clock domain names, fastest first (frequencies live in the recipes).
    clock_domains: tuple[str, ...] = ("clk1", "clk2")
    #: Primary data inputs.
    num_inputs: int = 16
    #: Primary outputs.
    num_outputs: int = 8
    #: Register-bank width per domain (flops directly holding datapath state).
    register_width: int = 16
    #: Pipeline stages per domain (each stage adds a register bank + logic).
    pipeline_stages: int = 2
    #: Number of ripple-adder slices per domain (easy-to-test datapath logic).
    adder_slices: int = 1
    #: Width of each adder slice.
    adder_width: int = 8
    #: Widths of the random-pattern-resistant equality comparators per domain.
    comparator_widths: tuple[int, ...] = (12,)
    #: Depth of the decode cones (AND trees over this many signals) per domain.
    decode_cone_width: int = 10
    #: Number of cross-domain links (registers capturing another domain's data).
    cross_domain_links: int = 2
    #: Number of X-source nets (modelled memory read ports).
    x_sources: int = 0
    #: RNG seed for structural choices.
    seed: int = 2005


@dataclass
class SyntheticCore:
    """The generated circuit plus bookkeeping the flow and reports use."""

    circuit: Circuit
    config: SyntheticCoreConfig
    #: Nets implementing random-resistant structures (useful for sanity checks).
    resistant_nets: list[str] = field(default_factory=list)
    #: Annotated X-source nets.
    x_source_nets: list[str] = field(default_factory=list)


def _domain_signal_pool(rng: random.Random, pool: list[str], count: int) -> list[str]:
    """Sample ``count`` driver nets (with replacement only if the pool is small)."""
    if count <= len(pool):
        return rng.sample(pool, count)
    return [rng.choice(pool) for _ in range(count)]


def generate_synthetic_core(config: SyntheticCoreConfig) -> SyntheticCore:
    """Generate a synthetic CPU-like IP core according to ``config``."""
    rng = random.Random(config.seed)
    builder = CircuitBuilder(name=config.name)
    inputs = builder.inputs(config.num_inputs, prefix="pi")
    resistant_nets: list[str] = []
    x_source_nets: list[str] = []

    #: Per-domain pool of nets available as logic drivers (inputs + flop outputs).
    pools: dict[str, list[str]] = {domain: list(inputs) for domain in config.clock_domains}
    #: Flop outputs per domain (for cross-domain links).
    domain_registers: dict[str, list[str]] = {domain: [] for domain in config.clock_domains}

    for domain_index, domain in enumerate(config.clock_domains):
        pool = pools[domain]
        for stage in range(config.pipeline_stages):
            stage_prefix = f"{domain}_s{stage}"

            # Datapath: adder slices (random-easy logic with reconvergence).
            for slice_index in range(config.adder_slices):
                a_bits = _domain_signal_pool(rng, pool, config.adder_width)
                b_bits = _domain_signal_pool(rng, pool, config.adder_width)
                sums, carry = builder.ripple_adder(
                    a_bits, b_bits, prefix=f"{stage_prefix}_add{slice_index}"
                )
                pool.extend(sums)
                pool.append(carry)

            # Random-resistant blocks: wide comparators gating a cloud of logic.
            for cmp_index, width in enumerate(config.comparator_widths):
                left = _domain_signal_pool(rng, pool, width)
                right = _domain_signal_pool(rng, pool, width)
                match = builder.equality_comparator(left, right)
                resistant_nets.append(match)
                gated_sources = _domain_signal_pool(rng, pool, 4)
                cloud = builder.parity_tree(gated_sources)
                gated = builder.and_(
                    match, cloud, name=builder.fresh_name(f"{stage_prefix}_gated{cmp_index}")
                )
                pool.append(gated)
                resistant_nets.append(gated)

            # Decode cone: deep AND over many signals (another resistant shape).
            if config.decode_cone_width >= 2:
                cone_inputs = _domain_signal_pool(rng, pool, config.decode_cone_width)
                cone = builder.tree(
                    GateType.AND, cone_inputs, prefix=f"{stage_prefix}_decode"
                )
                pool.append(cone)
                resistant_nets.append(cone)

            # Control logic: mux network selected by a couple of pool signals.
            select = _domain_signal_pool(rng, pool, 2)
            data = _domain_signal_pool(rng, pool, 4)
            pool.append(builder.mux_n(select, data, prefix=f"{stage_prefix}_ctl"))

            # Register bank closing the stage.
            bank_inputs = _domain_signal_pool(rng, pool, config.register_width)
            mixed = [
                builder.xor(net, rng.choice(pool), name=builder.fresh_name(f"{stage_prefix}_mix"))
                for net in bank_inputs
            ]
            registers = builder.register(
                mixed, clock_domain=domain, prefix=f"{stage_prefix}_reg"
            )
            domain_registers[domain].extend(registers)
            pool.extend(registers)

        # Optional X sources in the first domain only (memory read ports).
        # Each X source feeds exactly one mixing gate and one register, the way
        # a memory read port feeds a specific datapath register: the X-blocking
        # transform then only sacrifices that small cone, not half the core.
        if domain_index == 0:
            for x_index in range(config.x_sources):
                source_net = rng.choice(inputs)
                name = f"{domain}_mem_q{x_index}"
                builder.circuit.add_gate(
                    name, GateType.BUF, [source_net], x_source=True
                )
                x_source_nets.append(name)
                mixed = builder.or_(
                    name, rng.choice(pool), name=f"{domain}_mem_mix{x_index}"
                )
                capture_register = builder.flop(
                    mixed, name=f"{domain}_mem_reg{x_index}", clock_domain=domain
                )
                domain_registers[domain].append(capture_register)

    # Cross-domain links: a register in one domain capturing data from another.
    domains = list(config.clock_domains)
    if len(domains) > 1:
        for link_index in range(config.cross_domain_links):
            source_domain = domains[link_index % len(domains)]
            target_domain = domains[(link_index + 1) % len(domains)]
            source_pool = domain_registers[source_domain] or pools[source_domain]
            source = rng.choice(source_pool)
            mixed = builder.xor(
                source,
                rng.choice(pools[target_domain]),
                name=builder.fresh_name(f"xlink{link_index}"),
            )
            link_register = builder.flop(
                mixed, name=f"xlink_reg{link_index}", clock_domain=target_domain
            )
            pools[target_domain].append(link_register)
            domain_registers[target_domain].append(link_register)

    # Primary outputs: a mixture of datapath and resistant nets across domains.
    output_candidates: list[str] = []
    for domain in config.clock_domains:
        output_candidates.extend(domain_registers[domain][-4:])
        output_candidates.extend(pools[domain][-4:])
    rng.shuffle(output_candidates)
    chosen: list[str] = []
    for net in output_candidates:
        if net not in chosen:
            chosen.append(net)
        if len(chosen) >= config.num_outputs:
            break
    for net in chosen:
        builder.output(net)

    return SyntheticCore(
        circuit=builder.build(),
        config=config,
        resistant_nets=resistant_nets,
        x_source_nets=x_source_nets,
    )
