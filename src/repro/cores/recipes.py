"""Scaled recipes of the paper's two evaluation cores (Table 1).

The real cores:

============================  ==========  ==========
                               Core X      Core Y
============================  ==========  ==========
Gate count                     218.1 K     633.4 K
Flip-flops                     10.3 K      33.2 K
Scan chains                    100         106
Max chain length               104         345
Clock domains                  2           8
Frequency                      250 MHz     330 MHz
PRPGs                          2 x 19 bit  8 x 19 bit
MISRs                          19 + 99     7 x 19 + 80
Test points (observe only)     1 K         1 K
Random patterns                20 K        20 K
============================  ==========  ==========

A pure-Python gate-level flow cannot fault-simulate hundreds of thousands of
gates times 20 K patterns, so each recipe is scaled down by a constant factor
(the default is ~1/64 on flops and patterns) while preserving the *structural
ratios* that drive the paper's observations: flop/gate ratio, chains per
domain, chain-length balance, clock-domain count, the presence of cross-domain
logic and of random-resistant blocks, and the proportion between the
observation-point budget and the flop count.  EXPERIMENTS.md reports the
measured results next to the paper's absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .generator import SyntheticCore, SyntheticCoreConfig, generate_synthetic_core


@dataclass
class CoreRecipe:
    """A named, scaled configuration reproducing one Table 1 column."""

    name: str
    generator_config: SyntheticCoreConfig
    #: Functional frequency per clock domain (MHz).
    clock_frequencies_mhz: dict[str, float] = field(default_factory=dict)
    #: Number of scan chains to build (scaled from the paper's 100 / 106).
    total_scan_chains: int = 16
    #: Observation-point budget (scaled from the paper's 1 K).
    observation_point_budget: int = 16
    #: Random-pattern budget (scaled from the paper's 20 K).
    random_patterns: int = 2048
    #: Patterns used for the test-point-insertion profiling phase.
    tpi_profile_patterns: int = 256
    #: PRPG length (the paper uses 19 everywhere).
    prpg_length: int = 19
    #: Paper's reported numbers for side-by-side reporting.
    paper_reference: dict[str, object] = field(default_factory=dict)

    def build(self) -> SyntheticCore:
        """Generate the synthetic core for this recipe."""
        return generate_synthetic_core(self.generator_config)


def core_x_recipe(scale: float = 1.0, seed: int = 2005) -> CoreRecipe:
    """Scaled stand-in for Core X: 2 clock domains @ 250 MHz.

    ``scale`` multiplies the structural size (1.0 is the default small build;
    larger values approach the paper's proportions at the cost of runtime).
    """
    s = max(0.25, scale)
    config = SyntheticCoreConfig(
        name="core_x",
        clock_domains=("clk1", "clk2"),
        num_inputs=int(24 * s),
        num_outputs=int(12 * s),
        register_width=int(20 * s),
        pipeline_stages=2,
        adder_slices=1,
        adder_width=max(4, int(8 * s)),
        comparator_widths=(12, 10),
        decode_cone_width=max(6, int(10 * s)),
        cross_domain_links=2,
        x_sources=1,
        seed=seed,
    )
    return CoreRecipe(
        name="Core X (scaled)",
        generator_config=config,
        clock_frequencies_mhz={"clk1": 250.0, "clk2": 250.0},
        total_scan_chains=max(4, int(12 * s)),
        observation_point_budget=max(4, int(12 * s)),
        random_patterns=int(2048 * s),
        tpi_profile_patterns=int(256 * s),
        paper_reference={
            "gate_count": 218_100,
            "flip_flops": 10_300,
            "scan_chains": 100,
            "max_chain_length": 104,
            "clock_domains": 2,
            "frequency_mhz": 250,
            "prpgs": 2,
            "prpg_length": 19,
            "misrs": 2,
            "misr_lengths": "1: 19 / 1: 99",
            "test_points": 1000,
            "random_patterns": 20_000,
            "fault_coverage_1": 0.9382,
            "area_overhead": 0.044,
            "top_up_patterns": 135,
            "fault_coverage_2": 0.9712,
        },
    )


def core_y_recipe(scale: float = 1.0, seed: int = 2013) -> CoreRecipe:
    """Scaled stand-in for Core Y: 8 clock domains @ 330 MHz."""
    s = max(0.25, scale)
    domains = tuple(f"clk{i+1}" for i in range(8))
    config = SyntheticCoreConfig(
        name="core_y",
        clock_domains=domains,
        num_inputs=int(32 * s),
        num_outputs=int(16 * s),
        register_width=int(12 * s),
        pipeline_stages=2,
        adder_slices=1,
        adder_width=max(4, int(6 * s)),
        comparator_widths=(10,),
        decode_cone_width=6,
        cross_domain_links=8,
        x_sources=2,
        seed=seed,
    )
    # Core Y's domains are "around" 330 MHz; give them slightly different
    # frequencies so that the staggered capture is exercised for real.
    frequencies = {name: 330.0 - 8.0 * index for index, name in enumerate(domains)}
    return CoreRecipe(
        name="Core Y (scaled)",
        generator_config=config,
        clock_frequencies_mhz=frequencies,
        total_scan_chains=max(8, int(14 * s)),
        observation_point_budget=max(8, int(24 * s)),
        random_patterns=int(2048 * s),
        tpi_profile_patterns=int(256 * s),
        paper_reference={
            "gate_count": 633_400,
            "flip_flops": 33_200,
            "scan_chains": 106,
            "max_chain_length": 345,
            "clock_domains": 8,
            "frequency_mhz": 330,
            "prpgs": 8,
            "prpg_length": 19,
            "misrs": 8,
            "misr_lengths": "7: 19 / 1: 80",
            "test_points": 1000,
            "random_patterns": 20_000,
            "fault_coverage_1": 0.9322,
            "area_overhead": 0.032,
            "top_up_patterns": 528,
            "fault_coverage_2": 0.9758,
        },
    )


def tiny_recipe(seed: int = 7) -> CoreRecipe:
    """A deliberately small two-domain recipe for fast unit/integration tests."""
    config = SyntheticCoreConfig(
        name="tiny_core",
        clock_domains=("clkA", "clkB"),
        num_inputs=10,
        num_outputs=6,
        register_width=8,
        pipeline_stages=1,
        adder_slices=1,
        adder_width=4,
        comparator_widths=(8,),
        decode_cone_width=6,
        cross_domain_links=1,
        x_sources=1,
        seed=seed,
    )
    return CoreRecipe(
        name="Tiny core",
        generator_config=config,
        clock_frequencies_mhz={"clkA": 200.0, "clkB": 100.0},
        total_scan_chains=4,
        observation_point_budget=4,
        random_patterns=256,
        tpi_profile_patterns=64,
    )
