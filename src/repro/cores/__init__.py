"""Synthetic IP cores and benchmark circuits (S11).

Public API:

* :func:`~repro.cores.generator.generate_synthetic_core` with
  :class:`~repro.cores.generator.SyntheticCoreConfig`,
* the Table 1 recipes :func:`~repro.cores.recipes.core_x_recipe`,
  :func:`~repro.cores.recipes.core_y_recipe` and
  :func:`~repro.cores.recipes.tiny_recipe`,
* the small built-in benchmarks in :mod:`repro.cores.benchmarks`.
"""

from .generator import SyntheticCore, SyntheticCoreConfig, generate_synthetic_core
from .recipes import CoreRecipe, core_x_recipe, core_y_recipe, tiny_recipe
from .benchmarks import C17_BENCH, S27_LIKE_BENCH, c17, comparator_core, s27_like

__all__ = [
    "SyntheticCore",
    "SyntheticCoreConfig",
    "generate_synthetic_core",
    "CoreRecipe",
    "core_x_recipe",
    "core_y_recipe",
    "tiny_recipe",
    "C17_BENCH",
    "S27_LIKE_BENCH",
    "c17",
    "comparator_core",
    "s27_like",
]
