"""COP: probabilistic controllability / observability analysis.

COP (Controllability/Observability Program) estimates, under uniformly random
stimulus:

* ``p1(net)``  -- the probability that the net evaluates to 1,
* ``obs(net)`` -- the probability that a value change on the net propagates to
  an observed output,
* ``detect(fault)`` -- the probability that one random pattern detects a
  stuck-at fault, which is ``obs * p_activation``.

These estimates assume signal independence (reconvergent fanout is ignored),
which is exactly why fault-simulation-guided insertion beats them on real
circuits -- the ablation benchmark quantifies that gap.  They are nevertheless
useful for quick random-resistance screening and for estimating the expected
random-pattern coverage curve analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..faults.models import StuckAtFault
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType


@dataclass(frozen=True)
class CopMeasures:
    """COP pair for one net."""

    p1: float
    observability: float

    @property
    def p0(self) -> float:
        """Probability of the net being 0."""
        return 1.0 - self.p1


def signal_probabilities(circuit: Circuit, input_p1: float = 0.5) -> Dict[str, float]:
    """Probability of each net being 1 under independent random stimulus.

    ``input_p1`` is the 1-probability of every stimulus net (0.5 for an
    unbiased PRPG; weighted-random experiments use other values).
    """
    p1: dict[str, float] = {}
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_primary_input or gate.is_flop:
            p1[name] = input_p1
            continue
        gate_type = gate.gate_type
        if gate_type is GateType.CONST0:
            p1[name] = 0.0
            continue
        if gate_type is GateType.CONST1:
            p1[name] = 1.0
            continue
        probabilities = [p1[n] for n in gate.inputs]
        if gate_type in (GateType.AND, GateType.NAND):
            value = 1.0
            for p in probabilities:
                value *= p
            p1[name] = 1.0 - value if gate_type is GateType.NAND else value
        elif gate_type in (GateType.OR, GateType.NOR):
            value = 1.0
            for p in probabilities:
                value *= 1.0 - p
            p1[name] = value if gate_type is GateType.NOR else 1.0 - value
        elif gate_type in (GateType.XOR, GateType.XNOR):
            value = 0.0
            for p in probabilities:
                value = value * (1.0 - p) + (1.0 - value) * p
            p1[name] = 1.0 - value if gate_type is GateType.XNOR else value
        elif gate_type is GateType.NOT:
            p1[name] = 1.0 - probabilities[0]
        elif gate_type is GateType.BUF:
            p1[name] = probabilities[0]
        elif gate_type is GateType.MUX:
            sel, a, b = probabilities
            p1[name] = (1.0 - sel) * a + sel * b
        else:  # pragma: no cover
            raise ValueError(f"unsupported gate type {gate_type}")
    return p1


def observabilities(
    circuit: Circuit, p1: Dict[str, float] | None = None, input_p1: float = 0.5
) -> Dict[str, float]:
    """COP observability of every net (probability a change propagates out)."""
    if p1 is None:
        p1 = signal_probabilities(circuit, input_p1)
    obs: dict[str, float] = {name: 0.0 for name in circuit.gates}
    for net in circuit.observation_nets():
        obs[net] = 1.0
    for name in reversed(circuit.topological_order()):
        gate = circuit.gate(name)
        if gate.is_primary_input or gate.is_flop or gate.gate_type.is_source:
            continue
        output_obs = obs[name]
        if output_obs == 0.0:
            continue
        gate_type = gate.gate_type
        for pin, net in enumerate(gate.inputs):
            others = [n for i, n in enumerate(gate.inputs) if i != pin]
            if gate_type in (GateType.AND, GateType.NAND):
                sensitise = 1.0
                for other in others:
                    sensitise *= p1[other]
            elif gate_type in (GateType.OR, GateType.NOR):
                sensitise = 1.0
                for other in others:
                    sensitise *= 1.0 - p1[other]
            elif gate_type in (GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF):
                sensitise = 1.0
            elif gate_type is GateType.MUX:
                if pin == 0:
                    # A select change matters when the two data inputs differ.
                    a, b = p1[gate.inputs[1]], p1[gate.inputs[2]]
                    sensitise = a * (1.0 - b) + (1.0 - a) * b
                elif pin == 1:
                    sensitise = 1.0 - p1[gate.inputs[0]]
                else:
                    sensitise = p1[gate.inputs[0]]
            else:  # pragma: no cover
                raise ValueError(f"unsupported gate type {gate_type}")
            candidate = output_obs * sensitise
            if candidate > obs[net]:
                obs[net] = candidate
    return obs


def compute_cop(circuit: Circuit, input_p1: float = 0.5) -> Dict[str, CopMeasures]:
    """Full COP analysis: per-net (p1, observability)."""
    p1 = signal_probabilities(circuit, input_p1)
    obs = observabilities(circuit, p1, input_p1)
    return {name: CopMeasures(p1[name], obs[name]) for name in circuit.gates}


def detection_probability(
    circuit: Circuit, fault: StuckAtFault, cop: Dict[str, CopMeasures] | None = None
) -> float:
    """Per-random-pattern detection probability estimate for a stuck-at fault."""
    if cop is None:
        cop = compute_cop(circuit)
    net = fault.faulted_net(circuit)
    measures = cop[net]
    activation = measures.p0 if fault.value == 1 else measures.p1
    return activation * measures.observability


def expected_coverage(
    circuit: Circuit,
    faults: list[StuckAtFault],
    num_patterns: int,
    cop: Dict[str, CopMeasures] | None = None,
) -> float:
    """Analytic estimate of random-pattern coverage after ``num_patterns``.

    Uses the standard independence model: a fault with per-pattern detection
    probability *p* is detected with probability ``1 - (1 - p) ** n``.
    """
    if cop is None:
        cop = compute_cop(circuit)
    if not faults:
        return 1.0
    detected = 0.0
    for fault in faults:
        p = detection_probability(circuit, fault, cop)
        detected += 1.0 - (1.0 - p) ** num_patterns
    return detected / len(faults)


def random_resistant_nets(
    circuit: Circuit, threshold: float = 1e-3, input_p1: float = 0.5
) -> list[str]:
    """Nets whose COP detection probability (for either stuck value) is below ``threshold``."""
    cop = compute_cop(circuit, input_p1)
    resistant = []
    for name, measures in cop.items():
        gate = circuit.gate(name)
        if gate.is_primary_input or gate.gate_type.is_source:
            continue
        worst = min(measures.p0, measures.p1) * measures.observability
        if worst < threshold:
            resistant.append(name)
    return resistant
