"""Testability analysis (S5): SCOAP and COP measures.

Public API:

* :func:`~repro.testability.scoap.compute_scoap` and
  :func:`~repro.testability.scoap.hardest_to_observe`,
* :func:`~repro.testability.cop.compute_cop`,
  :func:`~repro.testability.cop.detection_probability`,
  :func:`~repro.testability.cop.expected_coverage` and
  :func:`~repro.testability.cop.random_resistant_nets`.
"""

from .scoap import INFINITE, ScoapMeasures, compute_scoap, hardest_to_observe
from .cop import (
    CopMeasures,
    compute_cop,
    detection_probability,
    expected_coverage,
    observabilities,
    random_resistant_nets,
    signal_probabilities,
)

__all__ = [
    "INFINITE",
    "ScoapMeasures",
    "compute_scoap",
    "hardest_to_observe",
    "CopMeasures",
    "compute_cop",
    "detection_probability",
    "expected_coverage",
    "observabilities",
    "random_resistant_nets",
    "signal_probabilities",
]
