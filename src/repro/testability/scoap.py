"""SCOAP testability measures (combinational controllability / observability).

SCOAP (Sandia Controllability/Observability Analysis Program) assigns every
net three integer measures:

* ``CC0`` -- effort to set the net to 0,
* ``CC1`` -- effort to set the net to 1,
* ``CO``  -- effort to observe the net at an output.

Conventional logic BIST flows use these (or the probabilistic COP measures) to
pick test-point locations.  The paper's key point is that its observation
points are chosen from *fault simulation* results instead; this module exists
both as the baseline for that comparison (ablation A1) and as a general
testability-analysis utility.

The computation uses the full-scan view: primary inputs and scan flop outputs
have CC0 = CC1 = 1, primary outputs and flop data inputs have CO = 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType

#: Value used for unreachable / infinite effort.
INFINITE = 10**9


@dataclass(frozen=True)
class ScoapMeasures:
    """SCOAP triple for one net."""

    cc0: int
    cc1: int
    co: int

    @property
    def controllability(self) -> int:
        """The harder of the two controllabilities (used for ranking)."""
        return max(self.cc0, self.cc1)


def _combine_and(cc0s: list[int], cc1s: list[int], invert: bool) -> tuple[int, int]:
    """Controllability of an AND (or NAND when ``invert``) output."""
    cc1 = sum(cc1s) + 1
    cc0 = min(cc0s) + 1
    return (cc1, cc0) if invert else (cc0, cc1)


def _combine_or(cc0s: list[int], cc1s: list[int], invert: bool) -> tuple[int, int]:
    """Controllability of an OR (or NOR when ``invert``) output."""
    cc0 = sum(cc0s) + 1
    cc1 = min(cc1s) + 1
    return (cc1, cc0) if invert else (cc0, cc1)


def _combine_xor(cc0s: list[int], cc1s: list[int], invert: bool) -> tuple[int, int]:
    """Controllability of an XOR/XNOR output (two-input formula folded left)."""
    cc0, cc1 = cc0s[0], cc1s[0]
    for next_cc0, next_cc1 in zip(cc0s[1:], cc1s[1:]):
        new_cc0 = min(cc0 + next_cc0, cc1 + next_cc1) + 1
        new_cc1 = min(cc0 + next_cc1, cc1 + next_cc0) + 1
        cc0, cc1 = new_cc0, new_cc1
    return (cc1, cc0) if invert else (cc0, cc1)


def compute_scoap(circuit: Circuit) -> Dict[str, ScoapMeasures]:
    """Compute SCOAP CC0/CC1/CO for every net of ``circuit`` (full-scan view)."""
    cc0: dict[str, int] = {}
    cc1: dict[str, int] = {}

    # Controllability: forward pass in topological order.
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_primary_input or gate.is_flop:
            cc0[name] = 1
            cc1[name] = 1
            continue
        gate_type = gate.gate_type
        if gate_type is GateType.CONST0:
            cc0[name], cc1[name] = 1, INFINITE
            continue
        if gate_type is GateType.CONST1:
            cc0[name], cc1[name] = INFINITE, 1
            continue
        in_cc0 = [cc0[n] for n in gate.inputs]
        in_cc1 = [cc1[n] for n in gate.inputs]
        if gate_type in (GateType.AND, GateType.NAND):
            cc0[name], cc1[name] = _combine_and(in_cc0, in_cc1, gate_type is GateType.NAND)
        elif gate_type in (GateType.OR, GateType.NOR):
            cc0[name], cc1[name] = _combine_or(in_cc0, in_cc1, gate_type is GateType.NOR)
        elif gate_type in (GateType.XOR, GateType.XNOR):
            cc0[name], cc1[name] = _combine_xor(in_cc0, in_cc1, gate_type is GateType.XNOR)
        elif gate_type is GateType.NOT:
            cc0[name], cc1[name] = in_cc1[0] + 1, in_cc0[0] + 1
        elif gate_type is GateType.BUF:
            cc0[name], cc1[name] = in_cc0[0] + 1, in_cc1[0] + 1
        elif gate_type is GateType.MUX:
            sel0, sel1 = cc0[gate.inputs[0]], cc1[gate.inputs[0]]
            a0, a1 = cc0[gate.inputs[1]], cc1[gate.inputs[1]]
            b0, b1 = cc0[gate.inputs[2]], cc1[gate.inputs[2]]
            cc0[name] = min(sel0 + a0, sel1 + b0) + 1
            cc1[name] = min(sel0 + a1, sel1 + b1) + 1
        else:  # pragma: no cover - exhaustive over GateType
            raise ValueError(f"unsupported gate type {gate_type}")

    # Observability: backward pass in reverse topological order.
    co: dict[str, int] = {name: INFINITE for name in circuit.gates}
    for net in circuit.observation_nets():
        co[net] = 0
    for name in reversed(circuit.topological_order()):
        gate = circuit.gate(name)
        if gate.is_primary_input or gate.is_flop or gate.gate_type.is_source:
            continue
        gate_type = gate.gate_type
        output_co = co[name]
        if output_co >= INFINITE:
            continue
        for pin, net in enumerate(gate.inputs):
            others = [n for i, n in enumerate(gate.inputs) if i != pin]
            if gate_type in (GateType.AND, GateType.NAND):
                effort = output_co + sum(cc1[n] for n in others) + 1
            elif gate_type in (GateType.OR, GateType.NOR):
                effort = output_co + sum(cc0[n] for n in others) + 1
            elif gate_type in (GateType.XOR, GateType.XNOR):
                effort = output_co + sum(min(cc0[n], cc1[n]) for n in others) + 1
            elif gate_type in (GateType.NOT, GateType.BUF):
                effort = output_co + 1
            elif gate_type is GateType.MUX:
                sel = gate.inputs[0]
                if pin == 0:
                    effort = output_co + min(cc0[gate.inputs[1]] + cc1[gate.inputs[2]],
                                             cc1[gate.inputs[1]] + cc0[gate.inputs[2]]) + 1
                elif pin == 1:
                    effort = output_co + cc0[sel] + 1
                else:
                    effort = output_co + cc1[sel] + 1
            else:  # pragma: no cover
                raise ValueError(f"unsupported gate type {gate_type}")
            co[net] = min(co[net], effort)

    return {
        name: ScoapMeasures(cc0[name], cc1[name], co[name]) for name in circuit.gates
    }


def hardest_to_observe(
    circuit: Circuit, count: int, exclude: set[str] | None = None
) -> list[str]:
    """The ``count`` combinational nets with the highest SCOAP CO.

    This is the classical observability-calculation heuristic for observation
    test-point placement -- the baseline the paper's fault-simulation-guided
    method is compared against.
    """
    measures = compute_scoap(circuit)
    exclude = exclude or set()
    candidates = [
        (name, m.co)
        for name, m in measures.items()
        if name not in exclude
        and not circuit.gate(name).is_primary_input
        and not circuit.gate(name).is_flop
    ]
    candidates.sort(key=lambda item: (-item[1], item[0]))
    return [name for name, _ in candidates[:count]]
