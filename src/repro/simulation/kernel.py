"""Compiled integer-indexed simulation kernel.

This module is the hot core underneath :class:`~repro.simulation.comb_sim.PackedSimulator`
and the fault simulators.  At construction time every net of the circuit is
*interned* to a dense integer ID (its position in the topological order) and
the combinational schedule is lowered into three flat parallel lists:

* ``ops``      -- small-integer opcode per gate (:mod:`repro.netlist.gates`),
* ``outs``     -- output net ID per gate,
* ``operands`` -- tuple of input net IDs per gate.

Simulation then runs over a flat ``list[int]`` value table indexed by net ID:
no ``dict[str, int]`` lookups, no per-gate function calls, and no per-gate
operand list construction.  Pattern blocks of any width (64 / 256 / 1024-bit
bigint words) amortise the interpreter loop over correspondingly more
patterns per pass.

Fanout-cone resimulation -- the inner loop of single-fault propagation -- is
pre-compiled per fault site into a :class:`ConePlan`: the sorted slice of
schedule indices inside the cone, the *frontier* nets the cone reads from the
fault-free base values, and the recomputed net IDs.  Re-simulating a cone is
then: copy the frontier words into the scratch table, force the site word,
and run the plan's flat lists.

The kernel compile is *backend-neutral*: the interning tables, the flat
schedule, the per-net topological levels (``net_levels``) and the cached
:class:`ConePlan` records describe the circuit, not an execution strategy.
The bigint interpreter below (:func:`_evaluate_lists`) is the default
``"python"`` execution backend; :mod:`repro.simulation.numpy_backend` lowers
the very same compiled form into level-batched ndarray index arrays for the
``"numpy"`` backend.  Because one compile feeds both, the two backends cannot
disagree about circuit structure.

Kernels are expensive to build (interning plus, lazily, one fanout-cone plan
per fault site), and the flow plus ATPG top-up routinely simulate the same
circuit back to back.  :func:`shared_kernel` therefore keeps a per-process
cache keyed by ``(circuit identity, structural revision)`` -- the in-process
mirror of the campaign runner's per-worker engine cache -- so cone plans are
compiled at most once per circuit revision per process.

The kernel knows nothing about net names beyond the interning tables; the
name-keyed public API lives in the adapter layer
(:class:`~repro.simulation.comb_sim.PackedSimulator`).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import (
    OP_AND,
    OP_AND2,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NAND2,
    OP_NOR,
    OP_NOR2,
    OP_NOT,
    OP_OR,
    OP_OR2,
    OP_XNOR,
    OP_XNOR2,
    OP_XOR,
    OP_XOR2,
    gate_opcode,
)


class StrictStimulusError(ValueError):
    """Raised in strict mode when a stimulus mapping is incomplete or misspelled."""


@dataclass(frozen=True)
class ConePlan:
    """Pre-compiled resimulation schedule for one fault site.

    Attributes
    ----------
    site_id:
        Net ID of the fault site (the overridden net).
    ops / outs / operands:
        Flat schedule slices covering exactly the combinational gates inside
        the site's fanout cone, in topological order, excluding the site's own
        driver (the site value is forced, never recomputed).
    frontier:
        Net IDs read by the cone gates but produced outside the recomputed
        set -- their fault-free words are copied into the scratch table before
        evaluation.
    computed:
        Net IDs recomputed by this plan (== ``outs``), exposed for fault-effect
        profiling.
    """

    site_id: int
    ops: tuple[int, ...]
    outs: tuple[int, ...]
    operands: tuple[tuple[int, ...], ...]
    frontier: tuple[int, ...]
    computed: tuple[int, ...]

    @property
    def num_slots(self) -> int:
        """Slot rows the vectorised scan charges for this cone: one per
        recomputed net plus one for the forced site value.  This is the unit
        the memory-budget tiler sums when packing faults into tiles."""
        return len(self.outs) + 1


def _evaluate_lists(
    ops: Sequence[int],
    outs: Sequence[int],
    operands: Sequence[tuple[int, ...]],
    values: list[int],
    mask: int,
) -> None:
    """Interpret one flat schedule over the integer value table, in place.

    This loop is the single hottest piece of code in the repository; it is
    deliberately branch-per-opcode with the 2-input specialisations first.
    """
    for op, out, ins in zip(ops, outs, operands):
        if op == OP_AND2:
            a, b = ins
            values[out] = values[a] & values[b]
        elif op == OP_XOR2:
            a, b = ins
            values[out] = values[a] ^ values[b]
        elif op == OP_OR2:
            a, b = ins
            values[out] = values[a] | values[b]
        elif op == OP_NAND2:
            a, b = ins
            values[out] = ~(values[a] & values[b]) & mask
        elif op == OP_NOR2:
            a, b = ins
            values[out] = ~(values[a] | values[b]) & mask
        elif op == OP_XNOR2:
            a, b = ins
            values[out] = ~(values[a] ^ values[b]) & mask
        elif op == OP_NOT:
            values[out] = ~values[ins[0]] & mask
        elif op == OP_BUF:
            values[out] = values[ins[0]]
        elif op == OP_MUX:
            s, a, b = ins
            sel = values[s]
            values[out] = (~sel & values[a]) | (sel & values[b])
        elif op == OP_AND:
            word = mask
            for i in ins:
                word &= values[i]
            values[out] = word
        elif op == OP_NAND:
            word = mask
            for i in ins:
                word &= values[i]
            values[out] = ~word & mask
        elif op == OP_OR:
            word = 0
            for i in ins:
                word |= values[i]
            values[out] = word
        elif op == OP_NOR:
            word = 0
            for i in ins:
                word |= values[i]
            values[out] = ~word & mask
        elif op == OP_XOR:
            word = 0
            for i in ins:
                word ^= values[i]
            values[out] = word
        elif op == OP_XNOR:
            word = 0
            for i in ins:
                word ^= values[i]
            values[out] = ~word & mask
        elif op == OP_CONST0:
            values[out] = 0
        else:  # OP_CONST1
            values[out] = mask


class CompiledKernel:
    """Integer-indexed compiled form of one circuit's combinational view."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        order = circuit.topological_order()
        #: Net ID -> name (IDs are positions in topological order).
        self.net_names: list[str] = list(order)
        #: Net name -> dense integer ID.
        self.net_id: dict[str, int] = {name: i for i, name in enumerate(order)}
        self.num_nets = len(order)
        levels = circuit.levels()
        #: Net ID -> combinational level (backend-neutral: the numpy backend
        #: groups the flat schedule into per-(level, opcode) batches with it).
        self.net_levels: list[int] = [levels[name] for name in order]

        stimulus = circuit.stimulus_nets()
        self.stimulus_names: list[str] = list(stimulus)
        self.stimulus_ids: list[int] = [self.net_id[name] for name in stimulus]
        self._stimulus_set = frozenset(stimulus)

        ops: list[int] = []
        outs: list[int] = []
        operands: list[tuple[int, ...]] = []
        net_id = self.net_id
        for name in order:
            gate = circuit.gate(name)
            if gate.is_primary_input or gate.is_flop:
                continue
            ops.append(gate_opcode(gate.gate_type, len(gate.inputs)))
            outs.append(net_id[name])
            operands.append(tuple(net_id[net] for net in gate.inputs))
        self.ops = ops
        self.outs = outs
        self.operands = operands
        self.num_gates = len(ops)
        #: Output net ID -> position in the flat schedule.
        self.sched_pos: dict[int, int] = {out: i for i, out in enumerate(outs)}

        self._cone_plans: dict[int, ConePlan] = {}
        #: Shared scratch table for cone resimulation (single-threaded reuse).
        self.scratch: list[int] = [0] * self.num_nets
        #: Per-kernel memo for derived circuit analyses (ATPG fanout
        #: adjacency, SCOAP backtrace guidance, ...).  Entries are keyed by
        #: analysis name and computed lazily by their consumers; because
        #: :func:`shared_kernel` hands every engine of a circuit revision the
        #: same kernel object, an analysis is computed at most once per
        #: revision per process, exactly like the cone plans.
        self.analysis_cache: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Value tables and stimulus
    # ------------------------------------------------------------------ #
    def make_table(self) -> list[int]:
        """A fresh all-zero value table (one word slot per net)."""
        return [0] * self.num_nets

    def set_stimulus(
        self,
        values: list[int],
        stimulus: Mapping[str, int],
        mask: int,
        strict: bool = False,
    ) -> None:
        """Load packed stimulus words into the table's stimulus slots.

        Nets missing from ``stimulus`` default to the all-zero word -- unless
        ``strict`` is set, in which case a missing stimulus net *or* a key
        that is not a stimulus net (the classic misspelled-net bug) raises
        :class:`StrictStimulusError`.
        """
        if strict:
            self.check_strict_stimulus(stimulus)
        get = stimulus.get
        for sid, name in zip(self.stimulus_ids, self.stimulus_names):
            values[sid] = get(name, 0) & mask

    def check_strict_stimulus(self, stimulus: Mapping[str, int]) -> None:
        """Strict-mode validation shared by every execution backend."""
        missing = [name for name in self.stimulus_names if name not in stimulus]
        unknown = [name for name in stimulus if name not in self._stimulus_set]
        if missing or unknown:
            raise StrictStimulusError(
                f"strict stimulus check failed: missing nets {missing[:5]!r}"
                f"{'...' if len(missing) > 5 else ''}, "
                f"unknown nets {unknown[:5]!r}{'...' if len(unknown) > 5 else ''}"
            )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, values: list[int], mask: int) -> None:
        """Full forward pass: evaluate every combinational gate, in place."""
        _evaluate_lists(self.ops, self.outs, self.operands, values, mask)

    def cone_plan(self, site_id: int) -> ConePlan:
        """Pre-compiled (cached) resimulation plan for the fanout cone of a net."""
        plan = self._cone_plans.get(site_id)
        if plan is None:
            cone_names = self.circuit.fanout_cone(self.net_names[site_id])
            member_ids = {self.net_id[name] for name in cone_names}
            sched_pos = self.sched_pos
            indices = sorted(
                sched_pos[nid]
                for nid in member_ids
                if nid != site_id and nid in sched_pos
            )
            ops = tuple(self.ops[k] for k in indices)
            outs = tuple(self.outs[k] for k in indices)
            operands = tuple(self.operands[k] for k in indices)
            written = set(outs)
            written.add(site_id)
            frontier = tuple(
                sorted({i for ins in operands for i in ins if i not in written})
            )
            plan = ConePlan(site_id, ops, outs, operands, frontier, outs)
            self._cone_plans[site_id] = plan
        return plan

    def resimulate_plan(
        self, plan: ConePlan, base: list[int], faulty_word: int, mask: int
    ) -> list[int]:
        """Run one cone plan with the site forced to ``faulty_word``.

        Returns the shared scratch table; only the slots named by
        ``plan.frontier``, ``plan.site_id`` and ``plan.computed`` are valid.
        The caller must consume the result before the next kernel call.
        """
        scratch = self.scratch
        for i in plan.frontier:
            scratch[i] = base[i]
        scratch[plan.site_id] = faulty_word
        _evaluate_lists(plan.ops, plan.outs, plan.operands, scratch, mask)
        return scratch


# --------------------------------------------------------------------------- #
# Per-process shared-kernel cache
# --------------------------------------------------------------------------- #
#: Circuit -> (structural revision at compile time, compiled kernel).  The
#: weak keys let circuits (and with them their kernels and cone plans) be
#: garbage-collected normally; a mutated circuit misses on the revision and
#: is recompiled.
_SHARED_KERNELS: "weakref.WeakKeyDictionary[Circuit, tuple[int, CompiledKernel]]" = (
    weakref.WeakKeyDictionary()
)


def shared_kernel(circuit: Circuit) -> CompiledKernel:
    """The per-process compiled kernel for ``circuit`` (compile-once cache).

    Keyed by circuit identity *and* structural revision: simulating the same
    circuit from several engine instances (the flow's random phase followed
    by ATPG top-up, or repeated campaign scenarios in one worker) shares one
    kernel -- and therefore one set of lazily compiled fanout-cone plans --
    while any netlist mutation (test-point insertion, scan stitching)
    transparently forces a fresh compile.

    Sharing is safe because the kernel itself is immutable apart from three
    single-threaded caches: the cone-plan dict and the analysis cache (both
    append-only) and the scratch table, whose contract already requires
    callers to consume results before the next kernel call.
    """
    cached = _SHARED_KERNELS.get(circuit)
    revision = circuit.revision
    if cached is not None and cached[0] == revision:
        return cached[1]
    kernel = CompiledKernel(circuit)
    _SHARED_KERNELS[circuit] = (revision, kernel)
    return kernel
