"""Pattern packing utilities.

The simulators in this package are *pattern-parallel*: the values of one net
for up to ``block_size`` test patterns are packed into a single Python integer
(bit *i* belongs to pattern *i*).  Python's arbitrary-precision integers make
the block size a first-class, fully configurable parameter: 64 keeps words in
one machine limb, while 256 or 1024 amortise the compiled kernel's
interpreter loop over 4-16x more patterns per pass and are the better
throughput choice for fault-simulation campaigns (see
``benchmarks/bench_fault_sim.py``).  Results are block-size invariant bit for
bit; ``DEFAULT_BLOCK_SIZE`` below is only the default, and every simulator,
the flow config (``LogicBistConfig.block_size``) and the streamed STUMPS
pattern generator accept any positive width.

This module provides the conversion helpers between the two representations:

* a *pattern list*: ``list[dict[net, 0|1]]`` -- convenient for tests and ATPG,
* a *packed block*: ``dict[net, int]`` plus a pattern count -- what the
  simulators consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

#: Default number of patterns per packed block.
DEFAULT_BLOCK_SIZE = 64


def mask_for(num_patterns: int) -> int:
    """Bit mask with ``num_patterns`` low bits set."""
    if num_patterns < 0:
        raise ValueError("pattern count cannot be negative")
    return (1 << num_patterns) - 1


@dataclass
class PatternBlock:
    """A block of up to ``block_size`` patterns packed per net.

    Attributes
    ----------
    assignments:
        Mapping net name -> packed word.  Bit *i* of a word is the value of
        that net in pattern *i*.
    num_patterns:
        Number of valid patterns (bits) in this block.
    """

    assignments: dict[str, int]
    num_patterns: int

    @property
    def mask(self) -> int:
        """Mask of valid pattern bits."""
        return mask_for(self.num_patterns)

    @property
    def num_words(self) -> int:
        """uint64 words per bit-plane row the numpy backend needs for this
        block (:func:`repro.simulation.numpy_backend.words_for`); the key of
        the per-width table/workspace caches and of memory-budget tiling."""
        return max(1, (self.num_patterns + 63) // 64)

    def value_of(self, net: str, pattern_index: int) -> int:
        """Scalar value of ``net`` in pattern ``pattern_index``."""
        if not 0 <= pattern_index < self.num_patterns:
            raise IndexError(f"pattern index {pattern_index} out of range")
        return (self.assignments.get(net, 0) >> pattern_index) & 1

    def pattern(self, pattern_index: int) -> dict[str, int]:
        """Extract one pattern as a net -> value dict."""
        if not 0 <= pattern_index < self.num_patterns:
            raise IndexError(f"pattern index {pattern_index} out of range")
        return {
            net: (word >> pattern_index) & 1 for net, word in self.assignments.items()
        }

    def patterns(self) -> list[dict[str, int]]:
        """Expand the whole block back into a pattern list."""
        return [self.pattern(i) for i in range(self.num_patterns)]


def pack_patterns(
    patterns: Sequence[Mapping[str, int]],
    nets: Iterable[str] | None = None,
) -> PatternBlock:
    """Pack a pattern list into one :class:`PatternBlock`.

    Parameters
    ----------
    patterns:
        Sequence of per-pattern net assignments; values must be 0 or 1.
        Missing nets default to 0.
    nets:
        Optional explicit net universe.  When omitted, the union of keys across
        all patterns is used.
    """
    if nets is None:
        universe: list[str] = []
        seen: set[str] = set()
        for pattern in patterns:
            for net in pattern:
                if net not in seen:
                    seen.add(net)
                    universe.append(net)
    else:
        universe = list(nets)
    words = {net: 0 for net in universe}
    for index, pattern in enumerate(patterns):
        for net in universe:
            value = pattern.get(net, 0)
            if value not in (0, 1):
                raise ValueError(f"pattern {index}: net {net!r} has non-binary value {value!r}")
            if value:
                words[net] |= 1 << index
    return PatternBlock(words, len(patterns))


def iter_blocks(
    patterns: Sequence[Mapping[str, int]],
    block_size: int = DEFAULT_BLOCK_SIZE,
    nets: Iterable[str] | None = None,
) -> Iterator[PatternBlock]:
    """Split a pattern list into packed blocks of at most ``block_size`` patterns."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    net_list = list(nets) if nets is not None else None
    for start in range(0, len(patterns), block_size):
        yield pack_patterns(patterns[start : start + block_size], nets=net_list)


def unpack_words(words: Mapping[str, int], num_patterns: int) -> list[dict[str, int]]:
    """Expand packed per-net words into a list of per-pattern dicts."""
    return PatternBlock(dict(words), num_patterns).patterns()
