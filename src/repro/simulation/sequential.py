"""Cycle-accurate sequential simulation with per-domain clock pulses.

The at-speed double-capture scheme (paper Fig. 2) pulses each clock domain's
test clock independently inside the capture window.  To verify that behaviour
(and to run small scan-mode examples end to end) this module provides a
scalar, cycle-accurate sequential simulator:

* flip-flop state is an explicit ``{flop_name: 0/1}`` dict,
* :meth:`SequentialSimulator.step` evaluates the combinational logic from the
  current state + primary inputs, then updates only the flops whose clock
  domain is pulsed in that step,
* :meth:`SequentialSimulator.scan_shift` shifts serial data through scan
  chains (ordered flop lists) the way the shift window does,
* :meth:`SequentialSimulator.capture_window` applies an ordered sequence of
  clock pulses — exactly the abstraction the double-capture scheduler emits.

For bulk work (thousands of random patterns) the BIST engine bypasses this
class and uses the pattern-parallel :class:`~repro.simulation.comb_sim.PackedSimulator`
directly; this simulator is the reference model the fast path is tested against.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import evaluate_scalar


class SequentialSimulator:
    """Scalar cycle-accurate simulator over a :class:`Circuit`."""

    def __init__(
        self, circuit: Circuit, initial_state: Optional[Mapping[str, int]] = None
    ) -> None:
        self.circuit = circuit
        self._flops = circuit.flop_names()
        self._flop_domain = {name: circuit.gate(name).clock_domain for name in self._flops}
        self._schedule = [
            (name, circuit.gate(name).gate_type, tuple(circuit.gate(name).inputs))
            for name in circuit.topological_order()
            if not circuit.gate(name).is_primary_input and not circuit.gate(name).is_flop
        ]
        self.state: dict[str, int] = {name: 0 for name in self._flops}
        if initial_state:
            self.load_state(initial_state)

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def reset(self, value: int = 0) -> None:
        """Force every flop to ``value``."""
        if value not in (0, 1):
            raise ValueError("reset value must be 0 or 1")
        for name in self.state:
            self.state[name] = value

    def load_state(self, values: Mapping[str, int]) -> None:
        """Overwrite a subset of the flop state (e.g. a parallel scan load)."""
        for name, value in values.items():
            if name not in self.state:
                raise KeyError(f"{name!r} is not a flop in this circuit")
            if value not in (0, 1):
                raise ValueError(f"flop {name!r}: value must be 0 or 1")
            self.state[name] = value

    # ------------------------------------------------------------------ #
    # Combinational evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, pi_values: Optional[Mapping[str, int]] = None) -> dict[str, int]:
        """Evaluate the combinational logic for the current state.

        Returns the value of every net.  Missing primary inputs default to 0.
        """
        pi_values = pi_values or {}
        values: dict[str, int] = {}
        for pi in self.circuit.primary_inputs:
            values[pi] = int(pi_values.get(pi, 0)) & 1
        values.update(self.state)
        for name, gate_type, inputs in self._schedule:
            values[name] = evaluate_scalar(gate_type, [values[n] for n in inputs])
        return values

    def outputs(self, pi_values: Optional[Mapping[str, int]] = None) -> dict[str, int]:
        """Primary-output values for the current state and inputs."""
        values = self.evaluate(pi_values)
        return {po: values[po] for po in self.circuit.primary_outputs}

    # ------------------------------------------------------------------ #
    # Clocked operation
    # ------------------------------------------------------------------ #
    def step(
        self,
        pi_values: Optional[Mapping[str, int]] = None,
        pulse_domains: Optional[Iterable[str]] = None,
    ) -> dict[str, int]:
        """One clock event: evaluate, then update the pulsed domains' flops.

        Parameters
        ----------
        pi_values:
            Primary-input values held during the cycle.
        pulse_domains:
            Clock domains receiving a pulse.  ``None`` pulses every domain
            (the classical single-clock view).

        Returns
        -------
        dict
            The pre-clock combinational values of every net (i.e. what the
            flops sampled).
        """
        values = self.evaluate(pi_values)
        domains = set(pulse_domains) if pulse_domains is not None else None
        for flop in self._flops:
            if domains is not None and self._flop_domain[flop] not in domains:
                continue
            data_net = self.circuit.gate(flop).inputs[0]
            self.state[flop] = values[data_net]
        return values

    def capture_window(
        self,
        pi_values: Optional[Mapping[str, int]],
        pulse_sequence: Sequence[Iterable[str]],
    ) -> list[dict[str, int]]:
        """Apply an ordered sequence of clock pulses (one step per entry).

        ``pulse_sequence`` is a list of domain collections, e.g. the
        double-capture scheduler's ``[{"clk1"}, {"clk1"}, {"clk2"}, {"clk2"}]``.
        Returns the list of pre-clock value maps, one per pulse.
        """
        return [self.step(pi_values, domains) for domains in pulse_sequence]

    # ------------------------------------------------------------------ #
    # Scan operation
    # ------------------------------------------------------------------ #
    def scan_shift(
        self,
        chains: Mapping[str, Sequence[str]],
        scan_in_bits: Mapping[str, int],
        pi_values: Optional[Mapping[str, int]] = None,
    ) -> dict[str, int]:
        """One shift-clock cycle through every scan chain simultaneously.

        Parameters
        ----------
        chains:
            Mapping chain name -> ordered flop list (scan-in first).
        scan_in_bits:
            Bit presented at each chain's scan-in pin this cycle.
        pi_values:
            Primary-input values held during shifting (normally irrelevant).

        Returns
        -------
        dict
            Mapping chain name -> bit that fell off the chain's scan-out.
        """
        del pi_values  # Shift mode bypasses the functional D path entirely.
        scan_out: dict[str, int] = {}
        for chain_name, flops in chains.items():
            if not flops:
                scan_out[chain_name] = 0
                continue
            scan_out[chain_name] = self.state[flops[-1]]
            for position in range(len(flops) - 1, 0, -1):
                self.state[flops[position]] = self.state[flops[position - 1]]
            in_bit = int(scan_in_bits.get(chain_name, 0)) & 1
            self.state[flops[0]] = in_bit
        return scan_out

    def scan_load(
        self, chains: Mapping[str, Sequence[str]], chain_values: Mapping[str, Sequence[int]]
    ) -> None:
        """Parallel-load full chain contents (shortcut for a whole shift window).

        ``chain_values[chain][i]`` is the value the *i*-th flop of the chain
        holds after the shift window, i.e. the same result as shifting the
        reversed sequence in serially.
        """
        for chain_name, flops in chains.items():
            values = chain_values.get(chain_name)
            if values is None:
                continue
            if len(values) != len(flops):
                raise ValueError(
                    f"chain {chain_name!r}: got {len(values)} values for {len(flops)} flops"
                )
            for flop, value in zip(flops, values):
                self.state[flop] = int(value) & 1

    def scan_unload(
        self, chains: Mapping[str, Sequence[str]]
    ) -> dict[str, list[int]]:
        """Read out full chain contents without disturbing the state."""
        return {
            chain_name: [self.state[flop] for flop in flops]
            for chain_name, flops in chains.items()
        }
