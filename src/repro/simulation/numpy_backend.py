"""NumPy bit-plane execution backend for the compiled simulation kernel.

The default ``"python"`` backend interprets the compiled kernel's flat
schedule one gate at a time over Python bigints (one arbitrary-precision word
per net).  This module provides the opt-in ``"numpy"`` backend: the value
table becomes a 2-D ``uint64`` *bit-plane* array of shape
``(num_rows, words_per_block)`` -- row *i* is net *i*'s packed pattern bits,
64 patterns per word, little-endian words so that row ``r`` and the bigint
``int.from_bytes(r.tobytes(), "little")`` are the same value -- and the
per-gate interpreter collapses into **per-(topological-level, opcode)
batches**: at compile time the flat schedule is grouped by level and opcode
into operand/output index arrays, and each batch is evaluated with a single
gather -> bulk bitwise op -> scatter.  Python-loop iterations drop from
``num_gates`` to ``num_levels x num_opcodes``.

Two execution structures are compiled from one backend-neutral
:class:`~repro.simulation.kernel.CompiledKernel`:

* :class:`NumpyKernel` -- the full forward pass (fault-free simulation) as
  level batches, plus bit-plane stimulus loading.
* :class:`FaultScanKernel` -- the PPSFP fault scan vectorised **across
  faults**: every active fault's pre-compiled
  :class:`~repro.simulation.kernel.ConePlan` is assigned a private run of
  *slot rows* appended after the good-value rows, the per-fault cone
  schedules are concatenated (statically, at compile time) into global
  per-(level, opcode) index arrays tagged with fault indices, and one block
  scan is: compute every fault's faulty site row in a few grouped
  operations, select the faults whose site value differs, and re-simulate
  *all* their cones together -- one gather/op/scatter per (level, opcode)
  over the union of cone gates, frontier values read in place from the
  good rows, detection masks reduced per fault with
  ``np.bitwise_or.reduceat``.  This is what makes the backend fast where the
  fault-simulation time actually goes: the per-fault scan, not the
  fault-free pass.

The scan's slot table grows with the total cone size of the live fault set
times the block width -- gigabytes on SoC-sized cores at wide blocks --
unless bounded: given a ``memory_budget_bytes`` (plumbed from
``LogicBistConfig.sim_memory_budget_mb``), :class:`FaultScanKernel` tiles
the live fault set into groups whose union-cone slot demand fits the
budget and executes each block tile by tile against **one recycled slot
arena** sized to the largest tile (re-indexed at compile/prune time, never
per block).  Per-width workspaces are kept in a two-entry LRU
(:func:`width_cache`), so the total footprint is bounded by roughly twice
the budget.  Tiling only changes *when* slot rows are computed, never what:
results stay bit-identical to the unbounded scan at any budget.

Both structures are **bit-identical** to the python backend by construction
(same compiled schedule, same masking discipline) and by test
(``tests/simulation/test_numpy_backend.py`` and the backend-parametrised
kernel-equivalence fuzz suite).

NumPy is an optional dependency (``pip install repro[fast]``); importing this
module without it merely sets :data:`HAVE_NUMPY` false, and selecting the
``"numpy"`` backend then raises :class:`SimBackendError` with an actionable
message.
"""

from __future__ import annotations

import weakref
from typing import Mapping, Optional, Sequence

from ..netlist.gates import (
    GateType,
    OP_AND,
    OP_AND2,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NAND2,
    OP_NOR,
    OP_NOR2,
    OP_NOT,
    OP_OR,
    OP_OR2,
    OP_XNOR,
    OP_XNOR2,
    OP_XOR,
    OP_XOR2,
)
from ..util.cache import KeyedLruCache
from .kernel import CompiledKernel, ConePlan

try:  # pragma: no cover - exercised implicitly by every numpy test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the dependency-free fast tier
    np = None
    HAVE_NUMPY = False


#: The default backend: the bigint interpreter, always available, the oracle.
PYTHON_BACKEND = "python"
#: The opt-in vectorised backend provided by this module.
NUMPY_BACKEND = "numpy"
#: Every recognised ``sim_backend`` value.
BACKENDS = (PYTHON_BACKEND, NUMPY_BACKEND)


class SimBackendError(RuntimeError):
    """Raised for unknown backends or a numpy backend without NumPy."""


def resolve_backend(backend: str) -> str:
    """Validate a backend name, failing fast with an actionable message."""
    if backend not in BACKENDS:
        raise SimBackendError(
            f"unknown sim backend {backend!r}: expected one of {BACKENDS}"
        )
    if backend == NUMPY_BACKEND and not HAVE_NUMPY:
        raise SimBackendError(
            'sim_backend="numpy" requested but NumPy is not installed; '
            'install the optional extra (pip install "repro[fast]") or keep '
            'the default sim_backend="python"'
        )
    return backend


def resolve_memory_budget_mb(memory_budget_mb: Optional[float]) -> Optional[int]:
    """Validate a ``sim_memory_budget_mb`` value and convert it to bytes.

    ``None`` (the default) means unbounded -- the scan compiles one tile
    over the whole live fault set, the pre-budget behaviour.  The budget
    only bounds the numpy backend's scan workspaces; the python backend's
    footprint is one bigint table regardless.
    """
    if memory_budget_mb is None:
        return None
    if memory_budget_mb <= 0:
        raise ValueError(
            f"sim_memory_budget_mb must be positive, got {memory_budget_mb!r}"
        )
    return int(memory_budget_mb * 1024 * 1024)


# --------------------------------------------------------------------------- #
# Bigint word <-> uint64 bit-plane conversions
# --------------------------------------------------------------------------- #
def words_for(num_patterns: int) -> int:
    """Number of uint64 words per bit-plane row for a block width."""
    return max(1, (num_patterns + 63) // 64)


def word_to_plane(word: int, num_words: int):
    """One packed bigint word as a little-endian uint64 bit-plane row.

    The returned array is a read-only view over the bigint's bytes; copy it
    (or assign it into a table row) before mutating.
    """
    return np.frombuffer(word.to_bytes(num_words * 8, "little"), dtype="<u8")


def plane_to_word(row) -> int:
    """A bit-plane row back as the packed bigint word (exact inverse)."""
    return int.from_bytes(row.tobytes(), "little")


def table_to_words(table, values: list[int], count: int) -> None:
    """Write the leading ``count`` bit-plane rows into a bigint value table."""
    buffer = table[:count].tobytes()
    stride = table.shape[1] * 8
    for i in range(count):
        values[i] = int.from_bytes(buffer[i * stride : (i + 1) * stride], "little")


# --------------------------------------------------------------------------- #
# Batched opcode execution
# --------------------------------------------------------------------------- #
def _compute_batch(table, op: int, opnd_rows, mask_plane, buffers, count: int):
    """Evaluate one (opcode, operand row arrays) batch into a scratch buffer.

    Mirrors :func:`repro.simulation.kernel._evaluate_lists` opcode for
    opcode: gathered operand rows are already masked (the table only ever
    holds masked rows), so the same "mask only after complement" discipline
    yields bit-identical rows.  Gathers go through ``np.take(mode="clip",
    out=...)`` into the preallocated ``buffers`` and the bulk ops run in
    place, so steady-state execution allocates nothing; the returned view
    aliases ``buffers["buf_a"]`` and must be consumed (scattered or copied)
    before the next call.
    """
    take = np.take
    buf_a = buffers["buf_a"][:count]
    if op in (OP_CONST0, OP_CONST1):
        buf_a[:] = 0 if op == OP_CONST0 else mask_plane
        return buf_a
    take(table, opnd_rows[0], axis=0, out=buf_a, mode="clip")
    if len(opnd_rows) >= 2:
        buf_b = buffers["buf_b"][:count]
        take(table, opnd_rows[1], axis=0, out=buf_b, mode="clip")
    if op == OP_AND2:
        np.bitwise_and(buf_a, buf_b, out=buf_a)
    elif op == OP_XOR2:
        np.bitwise_xor(buf_a, buf_b, out=buf_a)
    elif op == OP_OR2:
        np.bitwise_or(buf_a, buf_b, out=buf_a)
    elif op == OP_NAND2:
        np.bitwise_and(buf_a, buf_b, out=buf_a)
        np.invert(buf_a, out=buf_a)
        np.bitwise_and(buf_a, mask_plane, out=buf_a)
    elif op == OP_NOR2:
        np.bitwise_or(buf_a, buf_b, out=buf_a)
        np.invert(buf_a, out=buf_a)
        np.bitwise_and(buf_a, mask_plane, out=buf_a)
    elif op == OP_XNOR2:
        np.bitwise_xor(buf_a, buf_b, out=buf_a)
        np.invert(buf_a, out=buf_a)
        np.bitwise_and(buf_a, mask_plane, out=buf_a)
    elif op == OP_NOT:
        np.invert(buf_a, out=buf_a)
        np.bitwise_and(buf_a, mask_plane, out=buf_a)
    elif op == OP_BUF:
        pass
    elif op == OP_MUX:
        b_val = np.take(table, opnd_rows[2], axis=0, mode="clip")
        buf_a[:] = (~buf_a & buf_b) | (buf_a & b_val)
    else:
        # Variadic forms (the 1- and 3+-input AND/OR/XOR families; a single
        # operand folds to itself, exactly like the python interpreter's
        # identity-seeded loops).
        fold = (
            np.bitwise_and
            if op in (OP_AND, OP_NAND)
            else np.bitwise_or
            if op in (OP_OR, OP_NOR)
            else np.bitwise_xor
        )
        if len(opnd_rows) >= 2:
            fold(buf_a, buf_b, out=buf_a)
            for operand in opnd_rows[2:]:
                take(
                    table, operand, axis=0, out=buffers["buf_b"][:count], mode="clip"
                )
                fold(buf_a, buffers["buf_b"][:count], out=buf_a)
        if op in (OP_NAND, OP_NOR, OP_XNOR):
            np.invert(buf_a, out=buf_a)
            np.bitwise_and(buf_a, mask_plane, out=buf_a)
    return buf_a


def _execute_batch_buffered(
    table, op: int, out_rows, opnd_rows, mask_plane, buffers
) -> None:
    """One batch: buffered compute, then scatter into the value table."""
    table[out_rows] = _compute_batch(
        table, op, opnd_rows, mask_plane, buffers, len(out_rows)
    )


def evaluate_gate_planes(
    gate_type: GateType, operand_planes: Sequence, mask_plane
):
    """Stacked-row form of :func:`repro.netlist.gates.evaluate_packed`.

    Every element of ``operand_planes`` is an ``(n, words)`` array (or a
    broadcastable row); the result is the ``(n, words)`` gate output.  Used
    to compute the faulty site values of input-branch faults for many faults
    of the same (gate type, arity, pin, value) shape at once.
    """
    if gate_type in (GateType.AND, GateType.NAND):
        out = operand_planes[0].copy()
        for plane in operand_planes[1:]:
            out &= plane
        return (~out & mask_plane) if gate_type is GateType.NAND else out
    if gate_type in (GateType.OR, GateType.NOR):
        out = operand_planes[0].copy()
        for plane in operand_planes[1:]:
            out |= plane
        return (~out & mask_plane) if gate_type is GateType.NOR else (out & mask_plane)
    if gate_type in (GateType.XOR, GateType.XNOR):
        out = operand_planes[0].copy()
        for plane in operand_planes[1:]:
            out ^= plane
        out = out & mask_plane
        return (~out & mask_plane) if gate_type is GateType.XNOR else out
    if gate_type is GateType.NOT:
        return ~operand_planes[0] & mask_plane
    if gate_type is GateType.BUF:
        return operand_planes[0] & mask_plane
    if gate_type is GateType.MUX:
        sel, a, b = operand_planes
        return ((~sel & a) | (sel & b)) & mask_plane
    raise SimBackendError(f"cannot evaluate gate type {gate_type} on bit planes")


# --------------------------------------------------------------------------- #
# Full forward pass: the level-batched kernel
# --------------------------------------------------------------------------- #
class NumpyKernel:
    """Level-batched bit-plane execution of one compiled kernel.

    Compiled once per :class:`CompiledKernel` (see :func:`numpy_kernel_for`):
    the flat schedule is grouped by ``(topological level, opcode, arity)``
    into output/operand index arrays -- grouping by level is sound because a
    gate's level strictly exceeds every operand's level, so batches executed
    in ascending level order always read finished rows.
    """

    def __init__(self, kernel: CompiledKernel) -> None:
        self.kernel = kernel
        self.num_nets = kernel.num_nets
        levels = kernel.net_levels
        groups: dict[tuple[int, int, int], list[int]] = {}
        for index, (op, out) in enumerate(zip(kernel.ops, kernel.outs)):
            key = (levels[out], op, len(kernel.operands[index]))
            groups.setdefault(key, []).append(index)
        #: Ascending-level batches: (opcode, out index array, operand arrays).
        self.batches: list[tuple[int, object, list]] = []
        for key in sorted(groups):
            indices = groups[key]
            arity = key[2]
            out_idx = np.array([kernel.outs[i] for i in indices], dtype=np.intp)
            opnds = [
                np.array(
                    [kernel.operands[i][k] for i in indices], dtype=np.intp
                )
                for k in range(arity)
            ]
            self.batches.append((key[1], out_idx, opnds))
        self._max_eval_batch = max(
            (len(batch[1]) for batch in self.batches), default=1
        )
        self._eval_buffers = width_cache()
        self._stimulus_rows = np.array(kernel.stimulus_ids, dtype=np.intp)
        #: Per-site scan compilations, shared by every FaultScanKernel built
        #: over this kernel (cone plans themselves live on the CompiledKernel).
        self._site_compiles: dict[int, "_SiteCompile"] = {}
        #: Compiled FaultScanKernels keyed by (fault order, observation nets);
        #: bounded FIFO so repeated campaigns over the same fault universe
        #: (flow random phase, ATPG top-up, campaign shard tasks in one
        #: worker) reuse one compilation.  See ``scan_kernel_for``.
        self._scan_kernels: dict[tuple, "FaultScanKernel"] = {}

    # ------------------------------------------------------------------ #
    def make_table(self, num_words: int, extra_rows: int = 0):
        """An all-zero bit-plane table: one row per net (+ scan slot rows)."""
        return np.zeros((self.num_nets + extra_rows, num_words), dtype=np.uint64)

    def mask_plane(self, mask: int, num_words: int):
        """The pattern-validity mask as a bit-plane row."""
        return word_to_plane(mask, num_words)

    def set_stimulus(
        self,
        table,
        stimulus: Mapping[str, int],
        mask: int,
        num_words: int,
        strict: bool = False,
    ) -> None:
        """Load packed bigint stimulus words into the table's stimulus rows.

        Same semantics as the python backend's ``set_stimulus``: missing
        nets read all-zero, unknown keys are ignored, and ``strict`` raises
        :class:`~repro.simulation.kernel.StrictStimulusError` on either.
        The bigint -> bit-plane conversion is one bytes join plus a single
        scatter, not a per-net row assignment.
        """
        kernel = self.kernel
        if strict:
            kernel.check_strict_stimulus(stimulus)
        get = stimulus.get
        span = num_words * 8
        buffer = b"".join(
            (get(name, 0) & mask).to_bytes(span, "little")
            for name in kernel.stimulus_names
        )
        table[self._stimulus_rows] = np.frombuffer(buffer, dtype="<u8").reshape(
            len(kernel.stimulus_ids), num_words
        )

    def evaluate(self, table, mask_plane) -> None:
        """Full forward pass over the level batches, in place.

        Gathers run through preallocated per-width buffers and the bulk ops
        execute in place, so a steady-state pass allocates nothing.
        """
        num_words = table.shape[1]
        buffers = self._eval_buffers.get_or_build(
            num_words,
            lambda: {
                "buf_a": np.empty((self._max_eval_batch, num_words), np.uint64),
                "buf_b": np.empty((self._max_eval_batch, num_words), np.uint64),
            },
        )
        for op, out_idx, opnds in self.batches:
            _execute_batch_buffered(
                table, op, out_idx, opnds, mask_plane, buffers
            )


#: CompiledKernel -> its lazily built NumpyKernel (weak keys: lives and dies
#: with the shared kernel cache in :mod:`repro.simulation.kernel`).
_NUMPY_KERNELS: "weakref.WeakKeyDictionary[CompiledKernel, NumpyKernel]" = (
    weakref.WeakKeyDictionary() if HAVE_NUMPY else None  # type: ignore[assignment]
)


def numpy_kernel_for(kernel: CompiledKernel) -> NumpyKernel:
    """The (cached) level-batched form of a compiled kernel."""
    resolve_backend(NUMPY_BACKEND)
    cached = _NUMPY_KERNELS.get(kernel)
    if cached is None:
        cached = NumpyKernel(kernel)
        _NUMPY_KERNELS[kernel] = cached
    return cached


#: Entries kept per numpy kernel in the scan-kernel cache: enough for a
#: stuck-at campaign, its ATPG top-up remainder, and a transition session's
#: equivalent-stuck-at order to coexist.
_SCAN_CACHE_ENTRIES = 4

#: Block widths whose tables/workspaces are retained per cache.  A full
#: table is ``O(num_rows x width)`` bytes, so holding every width a session
#: ever touched (the pre-LRU behaviour) multiplies peak memory by the
#: number of distinct widths; two covers the steady state -- a campaign's
#: full-block width plus its partial tail block -- while any thrash beyond
#: that only costs a reallocation, never a result bit.
WIDTH_CACHE_ENTRIES = 2


def width_cache() -> KeyedLruCache:
    """A fresh per-width LRU for bit-plane tables/workspaces."""
    return KeyedLruCache(maxsize=WIDTH_CACHE_ENTRIES)


def scan_kernel_for(
    nk: NumpyKernel, cache_key: tuple, build
) -> "FaultScanKernel":
    """Bounded-FIFO cache of compiled :class:`FaultScanKernel` instances.

    ``cache_key`` must capture everything the compilation depends on beyond
    the kernel itself -- the canonical fault order and the observation-net
    set.  Scan compilation costs about as much as simulating one pattern
    block, so sharing it across engine instances (the flow's random phase
    followed by top-up, or every shard task of a campaign worker) matters.
    """
    cached = nk._scan_kernels.get(cache_key)
    if cached is None:
        cached = build()
        while len(nk._scan_kernels) >= _SCAN_CACHE_ENTRIES:
            nk._scan_kernels.pop(next(iter(nk._scan_kernels)))
        nk._scan_kernels[cache_key] = cached
    return cached


# --------------------------------------------------------------------------- #
# Fault-vectorised PPSFP scan
# --------------------------------------------------------------------------- #
class ScanFault:
    """Backend-neutral description of one fault for the vectorised scan.

    Built by the faults layer from its pre-resolved site records; this module
    only needs the execution-relevant facts.  ``const_value`` is the forced
    site value for output-stem / flop-D-branch faults; gate input-branch
    faults instead carry the owning gate's shape so the faulty site value can
    be re-evaluated with the pin forced.
    """

    __slots__ = (
        "site_id",
        "const_value",
        "gate_type",
        "operand_ids",
        "pin",
        "value",
        "plan",
        "observed_ids",
    )

    def __init__(
        self,
        site_id: int,
        plan: ConePlan,
        observed_ids: tuple[int, ...],
        const_value: Optional[int] = None,
        gate_type: Optional[GateType] = None,
        operand_ids: tuple[int, ...] = (),
        pin: int = 0,
        value: int = 0,
    ) -> None:
        self.site_id = site_id
        self.const_value = const_value
        self.gate_type = gate_type
        self.operand_ids = operand_ids
        self.pin = pin
        self.value = value
        self.plan = plan
        self.observed_ids = observed_ids


class _SiteCompile:
    """One fault site's cone plan lowered to slot-local form.

    Local encoding (plain Python lists, so per-fault-list assembly is pure
    C-speed ``list.extend`` plus one ``np.array`` per batch key): computed
    net *j* of the plan -> ``j``; the site row -> ``num_slots - 1``;
    frontier nets -> ``-(net_id + 1)`` (negative, resolved to the global
    good row at assembly time).  Shared by every fault at the site and by
    every scan compiled over this kernel.
    """

    __slots__ = ("num_slots", "site_local", "slot_of", "keyed", "key_counts")

    def __init__(self, kernel: CompiledKernel, plan: ConePlan) -> None:
        slot_of = {out: j for j, out in enumerate(plan.outs)}
        self.slot_of = slot_of
        self.num_slots = plan.num_slots
        self.site_local = len(plan.outs)
        site_id = plan.site_id

        def encode(nid: int) -> int:
            if nid == site_id:
                return self.site_local
            local = slot_of.get(nid)
            return local if local is not None else -(nid + 1)

        levels = kernel.net_levels
        keyed: dict[tuple[int, int, int], tuple[list[int], list[list[int]]]] = {}
        for op, out, ins in zip(plan.ops, plan.outs, plan.operands):
            key = (levels[out], op, len(ins))
            entry = keyed.get(key)
            if entry is None:
                entry = ([], [[] for _ in range(len(ins))])
                keyed[key] = entry
            entry[0].append(slot_of[out])
            for pin, nid in enumerate(ins):
                entry[1][pin].append(encode(nid))
        #: (level, opcode, arity) -> (out locals, per-pin operand locals).
        self.keyed = keyed
        #: (level, opcode, arity) -> instances this site contributes.
        self.key_counts = {key: len(entry[0]) for key, entry in keyed.items()}

    def observed_local(self, nid: int, site_id: int) -> int:
        """Slot-local index of an observed net (site included)."""
        return self.site_local if nid == site_id else self.slot_of[nid]


def _resolve_local(local_arr, base_rep):
    """Slot-local encodings (+ per-instance slot bases) -> global table rows."""
    return np.where(local_arr >= 0, local_arr + base_rep, -local_arr - 1).astype(
        np.intp
    )


class _ScanTile:
    """One tile of the live fault set, compiled against the shared slot arena.

    Every array is tile-local (``positions`` maps tile-local fault index ->
    canonical position); slot rows are *absolute* table rows into the arena
    region ``[num_nets, num_nets + arena_slots)``, assigned from the arena
    base for every tile -- which is exactly what lets one arena-sized table
    serve every tile in turn.
    """

    __slots__ = (
        "positions",
        "site_ids",
        "resimable",
        "plan_lens",
        "const0_local",
        "const1_local",
        "gate_batches",
        "empty_observed_local",
        "cone_batches",
        "site_slot_of",
        "obs_rows",
        "obs_globals",
        "obs_fault_local",
        "obs_len_of",
        "slots",
    )


class FaultScanKernel:
    """Union-cone vectorised PPSFP scan over a fixed canonical fault order.

    Compile once per (kernel, fault sequence, observation set, memory
    budget); scan any active subset per block via the position list of the
    canonical order.  Detection rows are bit-identical to the python
    backend's per-fault detection masks: the same compiled cone plans are
    executed in the same level order with the same masking discipline, and
    per-fault results never depend on other faults.

    **Execution strategy.**  The live fault set is partitioned into
    **tiles** whose compiled scan state fits ``memory_budget_bytes``; each
    tile's cone schedules are concatenated into per-(level, opcode) index
    arrays over a **recycled slot arena** -- one slot-row region, sized to
    the largest tile, appended after the good rows and re-used by every
    tile in turn.  A block scan walks the tiles: compute the tile's faulty
    site rows in a few grouped operations, select the faults whose site
    value differs, re-simulate their cones together (one gather/op/scatter
    per (level, opcode) over the union of the tile's cone gates, frontier
    values read in place from the good rows), reduce per-fault detection
    masks with ``np.bitwise_or.reduceat``, and merge the tile's detections
    back into canonical fault order.  Per-fault slot runs are private and
    every batch touches only the selected faults' rows, so stale arena
    contents from the previous tile (or block) are never read -- re-using
    the arena cannot change a result bit.

    With no budget (the default) there is exactly **one tile** containing
    the whole live set -- the pre-tiling behaviour: per-block temporaries
    live in per-width workspaces (gathers via ``np.take(..., out=...)``,
    bulk ops in place), so steady-state scanning allocates nothing, and
    detection rows alias workspace buffers.  With multiple tiles the
    arena and the per-fault scratch arrays are *tile*-sized -- peak memory
    is the configured budget instead of a function of fault-set size --
    and detection rows are small per-fault copies (they must survive the
    later tiles of the same scan).

    **Fault dropping and pruning.**  :meth:`maybe_prune` re-tiles over the
    survivors once enough faults have dropped; the pristine per-fault
    compilations (``_pieces`` and the phase-A site records) are the
    compile-once source of truth every re-tiling assembles from, so prunes
    never recompile cone lowerings and late-campaign blocks stay
    proportional to the surviving work.  Tiling is re-done lazily at the
    first ``table_for``/``workspace`` call for a width that needs it (the
    budget is width-dependent: wider blocks mean fewer faults per tile).
    """

    def __init__(
        self,
        nk: NumpyKernel,
        scan_faults: Sequence[ScanFault],
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.nk = nk
        kernel = nk.kernel
        count = len(scan_faults)
        self.num_faults = count
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        self.memory_budget_bytes = memory_budget_bytes
        self.site_ids = np.fromiter(
            (f.site_id for f in scan_faults), dtype=np.intp, count=count
        )
        self.plan_lens = np.fromiter(
            (len(f.plan.ops) for f in scan_faults), dtype=np.int64, count=count
        )

        self.resimable = np.zeros(count, dtype=bool)
        #: Per-fault phase-A site records: forced-constant value (-1 = gate
        #: re-evaluation) and the owning gate's shape for input-branch
        #: faults.  Together with ``_pieces`` these are the compile-once
        #: pristine source every (re-)tiling assembles from.
        self._const_val = np.full(count, -1, dtype=np.int8)
        self._gate_spec: list = [None] * count
        self._empty_observed = np.zeros(count, dtype=bool)
        #: Per-fault (site compile, observed locals, observed globals), or
        #: ``None`` for faults that never resimulate a cone.
        self._pieces: list = [None] * count

        site_compiles = nk._site_compiles
        for index, fault in enumerate(scan_faults):
            if fault.const_value is None:
                self._gate_spec[index] = (
                    fault.gate_type,
                    len(fault.operand_ids),
                    fault.pin,
                    fault.value,
                    fault.operand_ids,
                )
            else:
                self._const_val[index] = 1 if fault.const_value else 0
            if not fault.observed_ids:
                continue
            if not fault.plan.ops:
                # The only observable net of an empty cone is the site itself,
                # so the detection mask is exactly the site diff row.
                self._empty_observed[index] = True
                continue
            site = fault.site_id
            compiled = site_compiles.get(site)
            if compiled is None:
                compiled = _SiteCompile(kernel, fault.plan)
                site_compiles[site] = compiled
            self.resimable[index] = True
            self._pieces[index] = (
                compiled,
                [compiled.observed_local(nid, site) for nid in fault.observed_ids],
                list(fault.observed_ids),
            )

        #: Per-width workspaces, LRU-bounded to the two most-recent widths
        #: (a campaign's full-block width plus its partial tail): the
        #: pre-bound cache held a full table per width *forever*, so a flow
        #: touching widths {64, 256, 4096} tripled peak memory.  Cleared on
        #: every re-tiling (buffer shapes follow the tile maxima).
        self._workspaces = width_cache()
        #: High-water mark of total live workspace bytes (tables included)
        #: across the kernel's lifetime -- what benches/tests assert the
        #: budget against.
        self.peak_workspace_nbytes = 0
        #: True when a single fault's compiled state alone exceeded the
        #: budget, which clamps that tile over budget rather than failing.
        self.budget_clamped = False
        self._tiles: Optional[list[_ScanTile]] = None
        self._tile_width = 0
        self.total_slots = 0
        self._max_batch = 1
        self._max_obs = 0
        self._max_tile_faults = 0
        self._restore_full()

    # ------------------------------------------------------------------ #
    # Live-set management (tiles follow lazily)
    # ------------------------------------------------------------------ #
    def _invalidate_tiles(self) -> None:
        self._tiles = None
        self._workspaces.clear()

    def _restore_full(self) -> None:
        """Make the whole canonical order live (re-tiled on next use)."""
        self._live_positions = np.arange(self.num_faults, dtype=np.intp)
        self._live_mask = np.ones(self.num_faults, dtype=bool)
        self._live_count = self.num_faults
        self._invalidate_tiles()

    def _select_live(self, positions) -> None:
        """Shrink the live set to ``positions`` (re-tiled on next use)."""
        live = np.unique(np.asarray(positions, dtype=np.intp))
        self._live_positions = live
        live_mask = np.zeros(self.num_faults, dtype=bool)
        live_mask[live] = True
        self._live_mask = live_mask
        self._live_count = len(live)
        self._invalidate_tiles()

    def ensure_live(self, positions) -> None:
        """Restore the full live set if ``positions`` outgrew the pruned one
        (a cached scan being reused for a fresh campaign)."""
        if len(positions) and not self._live_mask[np.asarray(positions)].all():
            self._restore_full()

    def maybe_prune(self, positions) -> None:
        """Shrink the compiled tiles once enough faults have dropped.

        Re-tiling costs about as much as scanning one block, so halving is
        the trigger: late-campaign blocks then stay proportional to the
        surviving faults instead of the original fault universe.
        """
        if positions and len(positions) < self._live_count // 2:
            self._select_live(positions)

    # ------------------------------------------------------------------ #
    # Tiling: partition the live set against the memory budget
    # ------------------------------------------------------------------ #
    def _ensure_tiles(self, num_words: int) -> None:
        """(Re-)tile for ``num_words`` if the current tiling cannot serve it.

        A tiling built for width *W* is valid for every width <= *W* (the
        budget charge scales with the width, so narrower blocks only sit
        further under budget); an unbudgeted tiling (one tile) is valid for
        every width.
        """
        if self._tiles is not None and (
            self.memory_budget_bytes is None or num_words <= self._tile_width
        ):
            return
        self._build_tiles(num_words)

    def _workspace_rows(self, slots: int, n: int, obs: int, batch: int) -> int:
        """Total workspace rows for given tile maxima (the budget charge):
        the good+arena table, four n-row per-fault arrays (faulty /
        site_good / diff / det), two observation gathers and two batch
        scratch buffers."""
        return (self.nk.num_nets + slots) + 4 * n + 2 * obs + 2 * batch

    def _build_tiles(self, num_words: int) -> None:
        """Partition the live positions into tiles fitting the byte budget.

        Greedy one-pass split in canonical order with exact incremental
        accounting: a fault joins the current tile unless the workspace the
        *final* maxima would require (running per-tile stats joined with the
        maxima of the tiles already closed) exceeds the budget, in which
        case the tile is closed and a new one starts.  Unbudgeted scans
        take the degenerate path: one tile, identical to pre-tiling
        compilation.
        """
        budget = self.memory_budget_bytes
        bytes_row = num_words * 8
        num_nets = self.nk.num_nets
        pieces = self._pieces

        tiles: list[_ScanTile] = []
        gmax_slots = 0
        gmax_n = 0
        gmax_obs = 0
        gmax_batch = 1
        clamped = False

        # Current-tile accumulators (python lists: assembly is list.extend
        # plus one np.array per batch key, same as the original compile).
        acc: dict = {}

        def reset_acc() -> None:
            acc.update(
                positions=[],
                key_out={},
                key_opnds={},
                key_parts={},
                obs_locals=[],
                obs_globals=[],
                obs_bases=[],
                obs_counts=[],
                obs_ids=[],
                obs_len=[],
                gate_groups={},
                const0=[],
                const1=[],
                empty_observed=[],
                site_slot=[],
                key_counts={},
                max_batch=0,
                obs_total=0,
                cursor=0,
            )

        def finalize_tile() -> None:
            nonlocal gmax_slots, gmax_n, gmax_obs, gmax_batch
            tile = _ScanTile()
            positions = np.array(acc["positions"], dtype=np.intp)
            tile.positions = positions
            tile.site_ids = self.site_ids[positions]
            tile.resimable = self.resimable[positions]
            tile.plan_lens = self.plan_lens[positions]
            tile.const0_local = np.array(acc["const0"], dtype=np.intp)
            tile.const1_local = np.array(acc["const1"], dtype=np.intp)
            tile.empty_observed_local = np.array(
                acc["empty_observed"], dtype=np.intp
            )
            tile.site_slot_of = np.array(acc["site_slot"], dtype=np.intp)
            tile.obs_len_of = np.array(acc["obs_len"], dtype=np.intp)
            tile.slots = acc["cursor"]
            tile.gate_batches = []
            for (gate_type, arity, pin, value), entry in acc[
                "gate_groups"
            ].items():
                idx = np.array(entry[0], dtype=np.intp)
                columns = [
                    np.array(column, dtype=np.intp) for column in entry[1]
                ]
                tile.gate_batches.append(
                    (gate_type, arity, pin, value, idx, columns)
                )
            tile.cone_batches = []
            key_out = acc["key_out"]
            key_opnds = acc["key_opnds"]
            key_parts = acc["key_parts"]
            for key in sorted(key_out):
                _, op, arity = key
                bases, counts, part_locals = key_parts[key]
                counts_arr = np.array(counts, dtype=np.int64)
                base_rep = np.repeat(np.array(bases, dtype=np.int64), counts_arr)
                fault_ids = np.repeat(
                    np.array(part_locals, dtype=np.intp), counts_arr
                )
                out_rows = (
                    np.array(key_out[key], dtype=np.int64) + base_rep
                ).astype(np.intp)
                opnd_rows = [
                    _resolve_local(np.array(column, dtype=np.int64), base_rep)
                    for column in key_opnds[key]
                ]
                tile.cone_batches.append(
                    (op, arity, fault_ids, out_rows, opnd_rows)
                )
            obs_counts = np.array(acc["obs_counts"], dtype=np.int64)
            obs_base_rep = np.repeat(
                np.array(acc["obs_bases"], dtype=np.int64), obs_counts
            )
            tile.obs_rows = _resolve_local(
                np.array(acc["obs_locals"], dtype=np.int64), obs_base_rep
            )
            tile.obs_globals = np.array(acc["obs_globals"], dtype=np.intp)
            tile.obs_fault_local = np.repeat(
                np.array(acc["obs_ids"], dtype=np.intp), obs_counts
            )
            tiles.append(tile)
            gmax_slots = max(gmax_slots, tile.slots)
            gmax_n = max(gmax_n, len(positions))
            gmax_obs = max(gmax_obs, acc["obs_total"])
            gmax_batch = max(gmax_batch, acc["max_batch"])

        reset_acc()
        for position in self._live_positions:
            position = int(position)
            piece = pieces[position]
            if piece is not None:
                compiled = piece[0]
                d_slots = compiled.num_slots
                d_obs = len(piece[1])
                prospective_batch = acc["max_batch"]
                key_counts = acc["key_counts"]
                for key, instances in compiled.key_counts.items():
                    joined = key_counts.get(key, 0) + instances
                    if joined > prospective_batch:
                        prospective_batch = joined
            else:
                d_slots = 0
                d_obs = 0
                prospective_batch = acc["max_batch"]
            if budget is not None and acc["positions"]:
                candidate_rows = self._workspace_rows(
                    max(gmax_slots, acc["cursor"] + d_slots),
                    max(gmax_n, len(acc["positions"]) + 1),
                    max(gmax_obs, acc["obs_total"] + d_obs),
                    max(gmax_batch, prospective_batch, 1),
                )
                if candidate_rows * bytes_row > budget:
                    finalize_tile()
                    reset_acc()
                    if piece is not None:
                        prospective_batch = max(compiled.key_counts.values())
            local = len(acc["positions"])
            acc["positions"].append(position)
            cv = self._const_val[position]
            if cv == 0:
                acc["const0"].append(local)
            elif cv == 1:
                acc["const1"].append(local)
            else:
                gate_type, arity, pin, value, operand_ids = self._gate_spec[
                    position
                ]
                entry = acc["gate_groups"].get((gate_type, arity, pin, value))
                if entry is None:
                    entry = ([], [[] for _ in range(arity)])
                    acc["gate_groups"][(gate_type, arity, pin, value)] = entry
                entry[0].append(local)
                for k, nid in enumerate(operand_ids):
                    entry[1][k].append(nid)
            if self._empty_observed[position]:
                acc["empty_observed"].append(local)
            if piece is None:
                acc["site_slot"].append(-1)
                acc["obs_len"].append(0)
                continue
            compiled, piece_obs_locals, piece_obs_globals = piece
            base = num_nets + acc["cursor"]
            acc["cursor"] += compiled.num_slots
            acc["site_slot"].append(base + compiled.site_local)
            key_out = acc["key_out"]
            key_opnds = acc["key_opnds"]
            key_parts = acc["key_parts"]
            for key, (outs, opnds) in compiled.keyed.items():
                out_list = key_out.get(key)
                if out_list is None:
                    key_out[key] = list(outs)
                    key_opnds[key] = [list(column) for column in opnds]
                    key_parts[key] = ([base], [len(outs)], [local])
                else:
                    out_list.extend(outs)
                    opnd_lists = key_opnds[key]
                    for pin, column in enumerate(opnds):
                        opnd_lists[pin].extend(column)
                    bases, counts, part_locals = key_parts[key]
                    bases.append(base)
                    counts.append(len(outs))
                    part_locals.append(local)
            key_counts = acc["key_counts"]
            for key, instances in compiled.key_counts.items():
                key_counts[key] = key_counts.get(key, 0) + instances
            acc["max_batch"] = max(acc["max_batch"], prospective_batch)
            acc["obs_locals"].extend(piece_obs_locals)
            acc["obs_globals"].extend(piece_obs_globals)
            acc["obs_bases"].append(base)
            acc["obs_counts"].append(len(piece_obs_locals))
            acc["obs_ids"].append(local)
            acc["obs_len"].append(len(piece_obs_locals))
            acc["obs_total"] += len(piece_obs_locals)
        if acc["positions"]:
            finalize_tile()

        if budget is not None and tiles:
            final_rows = self._workspace_rows(
                gmax_slots, gmax_n, gmax_obs, gmax_batch
            )
            clamped = final_rows * bytes_row > budget

        self._tiles = tiles
        self._tile_width = num_words
        self.total_slots = gmax_slots
        self._max_batch = max(gmax_batch, 1)
        self._max_obs = gmax_obs
        self._max_tile_faults = gmax_n
        self.budget_clamped = clamped
        self._workspaces.clear()

    @property
    def num_tiles(self) -> int:
        """Tiles of the current tiling (0 before first use / after prune)."""
        return len(self._tiles) if self._tiles is not None else 0

    # ------------------------------------------------------------------ #
    # Per-width workspaces
    # ------------------------------------------------------------------ #
    def workspace(self, num_words: int) -> dict:
        """Preallocated tables and scratch buffers for one block width."""
        self._ensure_tiles(num_words)
        ws = self._workspaces.get_or_build(
            num_words, lambda: self._make_workspace(num_words)
        )
        return ws

    def _make_workspace(self, num_words: int) -> dict:
        n = self._max_tile_faults
        ws = {
            "table": self.nk.make_table(num_words, extra_rows=self.total_slots),
            "faulty": np.empty((n, num_words), dtype=np.uint64),
            "site_good": np.empty((n, num_words), dtype=np.uint64),
            "diff": np.empty((n, num_words), dtype=np.uint64),
            "buf_a": np.empty((self._max_batch, num_words), dtype=np.uint64),
            "buf_b": np.empty((self._max_batch, num_words), dtype=np.uint64),
            "obs_a": np.empty((self._max_obs, num_words), dtype=np.uint64),
            "obs_b": np.empty((self._max_obs, num_words), dtype=np.uint64),
            "det": np.empty((n, num_words), dtype=np.uint64),
        }
        live_bytes = sum(
            arr.nbytes
            for cached in self._workspaces._entries.values()
            for arr in cached.values()
        ) + sum(arr.nbytes for arr in ws.values())
        if live_bytes > self.peak_workspace_nbytes:
            self.peak_workspace_nbytes = live_bytes
        return ws

    def workspace_nbytes(self, num_words: int) -> int:
        """Measured bytes of one width's workspace, slot table included.

        This is exactly what the memory budget bounds (when not
        :attr:`budget_clamped`): ``workspace_nbytes(w) <=
        memory_budget_bytes`` for every width the tiling was built for.
        """
        return sum(arr.nbytes for arr in self.workspace(num_words).values())

    def table_for(self, num_words: int):
        """The good-rows + arena-rows bit-plane table for one block width."""
        return self.workspace(num_words)["table"]

    # ------------------------------------------------------------------ #
    # Block scan
    # ------------------------------------------------------------------ #
    def scan_positions(self, table, mask_plane, num_words: int, positions):
        """One PPSFP pass over the active faults given as canonical positions.

        ``table`` must be this kernel's own :meth:`table_for` table with the
        fault-free rows already evaluated.  Returns ``(detections,
        resim_gate_evals)`` where ``detections`` maps canonical fault index
        -> detection bit-plane row (only non-zero detections appear).  With
        a single tile (no budget) the returned rows alias workspace
        buffers: consume them before the next scan call.  With multiple
        tiles the rows are per-fault copies (the arena is recycled across
        tiles within this very call).
        """
        ws = self.workspace(num_words)
        active_mask = np.zeros(self.num_faults, dtype=bool)
        active_mask[positions] = True
        detections: dict[int, object] = {}
        gate_evals = 0
        tiles = self._tiles
        copy_rows = len(tiles) > 1
        for tile in tiles:
            tile_active = active_mask[tile.positions]
            if not tile_active.any():
                continue
            gate_evals += self._scan_tile(
                tile, table, mask_plane, num_words, ws, tile_active,
                detections, copy_rows,
            )
        return detections, gate_evals

    def _scan_tile(
        self,
        tile: _ScanTile,
        table,
        mask_plane,
        num_words: int,
        ws: dict,
        tile_active,
        detections: dict,
        copy_rows: bool,
    ) -> int:
        """Scan one tile against the shared arena; detections are merged
        into ``detections`` keyed by canonical position.  Returns the
        tile's resimulation gate-evaluation count."""
        n = len(tile.positions)
        faulty = ws["faulty"][:n]
        if len(tile.const0_local):
            faulty[tile.const0_local] = 0
        if len(tile.const1_local):
            faulty[tile.const1_local] = mask_plane
        zero_plane = None
        for gate_type, arity, pin, value, idx, columns in tile.gate_batches:
            if value:
                forced = np.broadcast_to(mask_plane, (len(idx), num_words))
            else:
                if zero_plane is None:
                    zero_plane = np.zeros(num_words, dtype=np.uint64)
                forced = np.broadcast_to(zero_plane, (len(idx), num_words))
            planes = [
                forced if k == pin else table[columns[k]] for k in range(arity)
            ]
            faulty[idx] = evaluate_gate_planes(gate_type, planes, mask_plane)
        site_good = np.take(
            table, tile.site_ids, axis=0, out=ws["site_good"][:n], mode="clip"
        )
        diff = np.bitwise_xor(faulty, site_good, out=ws["diff"][:n])
        candidates = diff.any(axis=1)
        candidates &= tile_active

        if len(tile.empty_observed_local):
            hit = tile.empty_observed_local[
                candidates[tile.empty_observed_local]
            ]
            for local in hit:
                row = diff[local]
                detections[int(tile.positions[local])] = (
                    row.copy() if copy_rows else row
                )

        resim_mask = candidates & tile.resimable
        gate_evals = int(tile.plan_lens[resim_mask].sum())
        resim_local = np.nonzero(resim_mask)[0]
        if len(resim_local):
            table[tile.site_slot_of[resim_local]] = faulty[resim_local]
            for op, _arity, fault_ids, all_out_rows, all_opnd_rows in (
                tile.cone_batches
            ):
                selector = resim_mask[fault_ids]
                out_rows = all_out_rows[selector]
                if not len(out_rows):
                    continue
                opnd_rows = [rows[selector] for rows in all_opnd_rows]
                _execute_batch_buffered(
                    table, op, out_rows, opnd_rows, mask_plane, ws
                )
            obs_selector = resim_mask[tile.obs_fault_local]
            obs_rows = tile.obs_rows[obs_selector]
            obs_globals = tile.obs_globals[obs_selector]
            count = len(obs_rows)
            obs_a = ws["obs_a"][:count]
            obs_b = ws["obs_b"][:count]
            np.take(table, obs_rows, axis=0, out=obs_a, mode="clip")
            np.take(table, obs_globals, axis=0, out=obs_b, mode="clip")
            np.bitwise_xor(obs_a, obs_b, out=obs_a)
            seg_lens = tile.obs_len_of[resim_local]
            seg_starts = np.zeros(len(resim_local), dtype=np.intp)
            if len(seg_lens) > 1:
                np.cumsum(seg_lens[:-1], out=seg_starts[1:])
            det = np.bitwise_or.reduceat(
                obs_a, seg_starts, axis=0, out=ws["det"][: len(resim_local)]
            )
            reported = det.any(axis=1)
            for j in np.nonzero(reported)[0]:
                row = det[j]
                detections[int(tile.positions[resim_local[j]])] = (
                    row.copy() if copy_rows else row
                )
        return gate_evals
