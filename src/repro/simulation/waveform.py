"""Waveform traces: named digital signals changing value over time.

Used by the event-driven simulator and by the at-speed timing generator
(:mod:`repro.timing.waveform_gen`) to represent the Fig. 2 shift/capture
window waveforms (TCK1, TCK2, SE, ...).  Times are floats in nanoseconds.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class SignalTrace:
    """One signal's list of (time, value) events, kept sorted by time."""

    name: str
    initial_value: int = 0
    events: list[tuple[float, int]] = field(default_factory=list)

    def add_event(self, time: float, value: int) -> None:
        """Record that the signal takes ``value`` at ``time``."""
        if value not in (0, 1):
            raise ValueError("signal values must be 0 or 1")
        index = bisect.bisect_right([t for t, _ in self.events], time)
        self.events.insert(index, (time, value))

    def value_at(self, time: float) -> int:
        """Signal value at ``time`` (events at exactly ``time`` are included)."""
        value = self.initial_value
        for event_time, event_value in self.events:
            if event_time <= time:
                value = event_value
            else:
                break
        return value

    def transitions(self) -> list[tuple[float, int, int]]:
        """List of (time, old_value, new_value) for actual value changes."""
        result = []
        value = self.initial_value
        for event_time, event_value in self.events:
            if event_value != value:
                result.append((event_time, value, event_value))
                value = event_value
        return result

    def rising_edges(self) -> list[float]:
        """Times of 0->1 transitions."""
        return [t for t, old, new in self.transitions() if old == 0 and new == 1]

    def falling_edges(self) -> list[float]:
        """Times of 1->0 transitions."""
        return [t for t, old, new in self.transitions() if old == 1 and new == 0]

    def pulse_count(self) -> int:
        """Number of complete 0->1 pulses."""
        return len(self.rising_edges())


class Waveform:
    """A bundle of :class:`SignalTrace` objects sharing one time axis."""

    def __init__(self) -> None:
        self._signals: dict[str, SignalTrace] = {}

    def signal(self, name: str, initial_value: int = 0) -> SignalTrace:
        """Return (creating if needed) the trace for ``name``."""
        if name not in self._signals:
            self._signals[name] = SignalTrace(name, initial_value)
        return self._signals[name]

    def has_signal(self, name: str) -> bool:
        """True when a trace with that name exists."""
        return name in self._signals

    def signal_names(self) -> list[str]:
        """Signal names in creation order."""
        return list(self._signals)

    def add_event(self, name: str, time: float, value: int) -> None:
        """Record an event on signal ``name`` (creating the trace if needed)."""
        self.signal(name).add_event(time, value)

    def add_pulse(self, name: str, start: float, width: float) -> None:
        """Record a single 0->1->0 pulse."""
        if width <= 0:
            raise ValueError("pulse width must be positive")
        trace = self.signal(name)
        trace.add_event(start, 1)
        trace.add_event(start + width, 0)

    def value_at(self, name: str, time: float) -> int:
        """Value of signal ``name`` at ``time``."""
        return self._signals[name].value_at(time)

    def end_time(self) -> float:
        """Largest event time across all signals (0.0 when empty)."""
        times = [t for trace in self._signals.values() for t, _ in trace.events]
        return max(times, default=0.0)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_ascii(
        self,
        signals: Sequence[str] | None = None,
        resolution_ns: float = 1.0,
        end_time: float | None = None,
    ) -> str:
        """Render selected signals as an ASCII timing diagram.

        Each character column covers ``resolution_ns`` nanoseconds; a signal
        is drawn with ``_`` for low and ``#`` (high bar) for high.  This is the
        textual analogue of the paper's Fig. 2 and is what the Fig. 2 benchmark
        and the multi-clock example print.
        """
        if resolution_ns <= 0:
            raise ValueError("resolution must be positive")
        names = list(signals) if signals is not None else self.signal_names()
        horizon = end_time if end_time is not None else self.end_time()
        columns = max(1, int(round(horizon / resolution_ns)) + 1)
        width = max((len(n) for n in names), default=0)
        lines = []
        for name in names:
            trace = self._signals[name]
            row = "".join(
                "#" if trace.value_at(col * resolution_ns) else "_"
                for col in range(columns)
            )
            lines.append(f"{name.rjust(width)} |{row}")
        return "\n".join(lines)

    def to_value_change_dump(self, signals: Iterable[str] | None = None) -> str:
        """Serialise as a minimal VCD-like text (for offline inspection)."""
        names = list(signals) if signals is not None else self.signal_names()
        lines = ["$timescale 1ns $end"]
        symbols = {name: chr(ord("!") + i) for i, name in enumerate(names)}
        for name in names:
            lines.append(f"$var wire 1 {symbols[name]} {name} $end")
        lines.append("$enddefinitions $end")
        events: list[tuple[float, str, int]] = []
        for name in names:
            trace = self._signals[name]
            events.append((0.0, name, trace.initial_value))
            for time, old, new in trace.transitions():
                events.append((time, name, new))
        events.sort(key=lambda item: item[0])
        current_time = None
        for time, name, value in events:
            if time != current_time:
                lines.append(f"#{int(round(time * 1000))}")
                current_time = time
            lines.append(f"{value}{symbols[name]}")
        return "\n".join(lines)
