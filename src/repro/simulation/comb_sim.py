"""Pattern-parallel combinational logic simulation.

Two simulators are provided:

* :class:`PackedSimulator` -- two-valued, pattern-parallel.  This is the
  workhorse underneath fault simulation, random-pattern coverage estimation
  and signature computation.  Flop outputs are treated as pseudo primary
  inputs (the full-scan view), so the caller supplies their values alongside
  the primary inputs.  Since the compiled-kernel refactor this class is a
  thin *name-keyed adapter* over :class:`~repro.simulation.kernel.CompiledKernel`:
  the actual evaluation runs over flat integer-indexed lists, and callers that
  care about throughput (the fault simulators) talk to ``.kernel`` directly in
  ID space.  The dict-in / dict-out API below is unchanged from the pre-kernel
  implementation.
* :class:`XPropagationSimulator` -- three-valued (0/1/X), pattern-parallel.
  Used by the X-source analysis in :mod:`repro.scan.x_blocking` and by ATPG
  to check which faults a partially-specified pattern already covers.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import (
    OPCODE_GATE_TYPES as _OPCODE_GATE_TYPES,
    GateType,
    PackedValue3,
    evaluate_packed,
    evaluate_packed3,
)
from .kernel import StrictStimulusError, shared_kernel
from .numpy_backend import (
    NUMPY_BACKEND,
    PYTHON_BACKEND,
    numpy_kernel_for,
    resolve_backend,
    resolve_memory_budget_mb,
    table_to_words,
    width_cache,
    words_for,
)
from .packed import DEFAULT_BLOCK_SIZE, PatternBlock, iter_blocks, mask_for


class PackedSimulator:
    """Two-valued, pattern-parallel combinational simulator.

    The constructor compiles the circuit into a
    :class:`~repro.simulation.kernel.CompiledKernel` (interned net IDs, flat
    opcode schedule, shared per process via
    :func:`~repro.simulation.kernel.shared_kernel`); whole pattern blocks of
    any width are then evaluated with one pass of bitwise operations per gate
    over an integer-indexed value table.

    ``backend`` selects the execution strategy for :meth:`simulate_block`:
    ``"python"`` (default, the bigint interpreter and bit-exactness oracle)
    or ``"numpy"`` (level-batched uint64 bit planes, see
    :mod:`repro.simulation.numpy_backend`); results are bit-identical.
    """

    def __init__(
        self,
        circuit: Circuit,
        backend: str = PYTHON_BACKEND,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        self.circuit = circuit
        self.backend = resolve_backend(backend)
        #: Peak scan-memory budget in MB, validated here and carried for
        #: the fault-scan engines built on top of this simulator (the
        #: packed simulator's own per-width tables are already bounded by
        #: the two-entry width LRU below).
        self.memory_budget_mb = memory_budget_mb
        resolve_memory_budget_mb(memory_budget_mb)
        #: The compiled integer-indexed kernel; fault simulators use it directly.
        self.kernel = shared_kernel(circuit)
        self._stimulus = set(circuit.stimulus_nets())
        self._values = self.kernel.make_table()
        self._np_kernel = (
            numpy_kernel_for(self.kernel) if self.backend == NUMPY_BACKEND else None
        )
        # Per-width bit-plane tables, bounded to the two most-recent widths
        # (eviction costs a reallocation, never a result bit).
        self._np_tables = width_cache() if self._np_kernel is not None else None

    # ------------------------------------------------------------------ #
    # Block-level interface
    # ------------------------------------------------------------------ #
    def simulate_block(
        self, stimulus: Mapping[str, int], num_patterns: int, strict: bool = False
    ) -> dict[str, int]:
        """Simulate one packed block.

        Parameters
        ----------
        stimulus:
            Packed values for primary inputs and flop outputs (pseudo primary
            inputs).  Nets not supplied default to all-zero.
        num_patterns:
            Number of valid pattern bits in the block.
        strict:
            When true, a stimulus net missing from ``stimulus`` or a key that
            is not a stimulus net (e.g. a misspelled name, which would
            otherwise be silently ignored) raises
            :class:`~repro.simulation.kernel.StrictStimulusError`.

        Returns
        -------
        dict
            Packed values for *every* net in the circuit (stimulus nets
            included), suitable for response capture or fault-effect
            comparison.
        """
        mask = mask_for(num_patterns)
        kernel = self.kernel
        if self._np_kernel is not None:
            num_words = words_for(num_patterns)
            table = self._np_tables.get_or_build(
                num_words, lambda: self._np_kernel.make_table(num_words)
            )
            self._np_kernel.set_stimulus(table, stimulus, mask, num_words, strict=strict)
            self._np_kernel.evaluate(table, self._np_kernel.mask_plane(mask, num_words))
            values = self._values
            table_to_words(table, values, kernel.num_nets)
            return dict(zip(kernel.net_names, values))
        values = self._values
        kernel.set_stimulus(values, stimulus, mask, strict=strict)
        kernel.evaluate(values, mask)
        return dict(zip(kernel.net_names, values))

    def resimulate_cone(
        self,
        base_values: Mapping[str, int],
        overrides: Mapping[str, int],
        cone: set[str],
        num_patterns: int,
    ) -> dict[str, int]:
        """Re-evaluate only the gates inside ``cone`` with some nets overridden.

        This is the name-keyed compatibility form of single-fault propagation:
        ``base_values`` is the fault-free simulation result, ``overrides`` pins
        the fault site(s) to their faulty value, and only the fanout ``cone``
        of the fault site is recomputed.  Values of nets outside the cone are
        read from ``base_values``.  (The fault simulators use the faster
        pre-compiled per-site :class:`~repro.simulation.kernel.ConePlan` path
        on ``.kernel`` instead.)

        Returns the packed values of the nets inside the cone (plus the
        overridden nets).
        """
        mask = mask_for(num_patterns)
        kernel = self.kernel
        net_names = kernel.net_names
        local: dict[str, int] = {net: value & mask for net, value in overrides.items()}

        def value_of(net: str) -> int:
            if net in local:
                return local[net]
            return base_values[net]

        for op, out, ins in zip(kernel.ops, kernel.outs, kernel.operands):
            name = net_names[out]
            if name not in cone or name in local:
                continue
            local[name] = evaluate_packed(
                _OPCODE_GATE_TYPES[op], [value_of(net_names[i]) for i in ins], mask
            )
        return local

    # ------------------------------------------------------------------ #
    # Pattern-list convenience interface
    # ------------------------------------------------------------------ #
    def run(
        self,
        patterns: Sequence[Mapping[str, int]],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> list[dict[str, int]]:
        """Simulate a pattern list and return per-pattern values of every net."""
        results: list[dict[str, int]] = []
        for block in iter_blocks(patterns, block_size=block_size):
            values = self.simulate_block(block.assignments, block.num_patterns)
            results.extend(PatternBlock(values, block.num_patterns).patterns())
        return results

    def run_outputs(
        self,
        patterns: Sequence[Mapping[str, int]],
        observe: Sequence[str] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> list[dict[str, int]]:
        """Simulate a pattern list and return only the observed nets per pattern.

        ``observe`` defaults to the circuit's observation nets (primary outputs
        plus flop data inputs).
        """
        observe = list(observe) if observe is not None else self.circuit.observation_nets()
        results: list[dict[str, int]] = []
        for block in iter_blocks(patterns, block_size=block_size):
            values = self.simulate_block(block.assignments, block.num_patterns)
            selected = {net: values[net] for net in observe}
            results.extend(PatternBlock(selected, block.num_patterns).patterns())
        return results


class XPropagationSimulator:
    """Three-valued (0/1/X), pattern-parallel combinational simulator."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._stimulus = set(circuit.stimulus_nets())
        self._schedule: list[tuple[str, GateType, tuple[str, ...]]] = []
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            if gate.is_primary_input or gate.is_flop:
                continue
            self._schedule.append((name, gate.gate_type, tuple(gate.inputs)))

    def simulate_block(
        self,
        stimulus: Mapping[str, PackedValue3],
        num_patterns: int,
        default_x: bool = True,
        force_x: "set[str] | None" = None,
    ) -> dict[str, PackedValue3]:
        """Simulate one packed block of three-valued stimulus.

        Nets not present in ``stimulus`` default to all-X when ``default_x`` is
        true (the conservative choice for X-source analysis) and to constant 0
        otherwise.  Nets listed in ``force_x`` are forced to all-X regardless
        of their computed value -- this is how internal X sources (memory
        outputs, black boxes) are modelled without changing the netlist.
        """
        mask = mask_for(num_patterns)
        force_x = force_x or set()
        values: dict[str, PackedValue3] = {}
        for net in self._stimulus:
            if net in force_x:
                values[net] = PackedValue3.all_x()
            elif net in stimulus:
                supplied = stimulus[net]
                values[net] = PackedValue3(supplied.ones & mask, supplied.zeros & mask)
            elif default_x:
                values[net] = PackedValue3.all_x()
            else:
                values[net] = PackedValue3.constant(0, mask)
        for name, gate_type, inputs in self._schedule:
            if name in force_x:
                values[name] = PackedValue3.all_x()
                continue
            values[name] = evaluate_packed3(
                gate_type, [values[net] for net in inputs], mask
            )
        return values

    def simulate_single(
        self, stimulus: Mapping[str, int | None], default_x: bool = True
    ) -> dict[str, int | None]:
        """Simulate one pattern where ``None`` denotes X; returns scalar values.

        Convenience wrapper used by ATPG (which reasons pattern-at-a-time) and
        by the X-blocking analysis tests.
        """
        packed: dict[str, PackedValue3] = {}
        for net, value in stimulus.items():
            if value is None:
                packed[net] = PackedValue3.all_x()
            else:
                packed[net] = PackedValue3.constant(int(value), 1)
        values = self.simulate_block(packed, 1, default_x=default_x)
        result: dict[str, int | None] = {}
        for net, value in values.items():
            if value.ones & 1:
                result[net] = 1
            elif value.zeros & 1:
                result[net] = 0
            else:
                result[net] = None
        return result

    def x_reachable_nets(self, x_sources: Sequence[str]) -> set[str]:
        """Nets whose value can become X when the given source nets are X.

        The sources may be stimulus nets or internal nets (memory/black-box
        outputs).  All other stimulus nets are treated as known; a net is
        reported when its simulated value is unknown, i.e. the X actually
        propagates through the logic rather than merely being in the fanout.
        A simulation with all-0 and one with all-1 side inputs are unioned,
        because a single corner under-approximates propagation through
        controlling values (the typical DFT heuristic).
        """
        mask = 1
        sources = set(x_sources)
        reachable: set[str] = set()
        for corner in (0, 1):
            stimulus = {
                net: PackedValue3.constant(corner, mask)
                for net in self._stimulus
                if net not in sources
            }
            values = self.simulate_block(stimulus, 1, default_x=False, force_x=sources)
            for net, value in values.items():
                if (value.ones | value.zeros) & mask == 0:
                    reachable.add(net)
        return reachable
