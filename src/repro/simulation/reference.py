"""Reference name-keyed simulators: the pre-kernel oracle path.

These classes preserve, verbatim in behaviour, the original string-keyed
implementation of :class:`~repro.simulation.comb_sim.PackedSimulator` and the
pattern-parallel single-fault-propagation engine from before the compiled
integer-indexed kernel (:mod:`repro.simulation.kernel`) replaced them on the
hot path.  They exist for two reasons:

* the randomized equivalence suite (``tests/simulation/test_kernel_equivalence.py``)
  asserts the compiled kernel's results are bit-identical to this path across
  block sizes and seeds,
* the benchmark regression harness (``benchmarks/bench_fault_sim.py``) uses
  them as the "before" engine when recording the fault-simulation speedup in
  ``BENCH_fault_sim.json``.

Every gate evaluation here goes through ``dict[str, int]`` lookups keyed by
net names -- exactly the overhead the kernel removes.  Do not use these
classes in production paths.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType, evaluate_packed
from .packed import DEFAULT_BLOCK_SIZE, iter_blocks, mask_for


class ReferencePackedSimulator:
    """The original name-keyed, dict-based pattern-parallel simulator."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._stimulus = set(circuit.stimulus_nets())
        self._schedule: list[tuple[str, GateType, tuple[str, ...]]] = []
        for name in circuit.topological_order():
            gate = circuit.gate(name)
            if gate.is_primary_input or gate.is_flop:
                continue
            self._schedule.append((name, gate.gate_type, tuple(gate.inputs)))

    def simulate_block(
        self, stimulus: Mapping[str, int], num_patterns: int
    ) -> dict[str, int]:
        """Simulate one packed block; nets not supplied default to all-zero."""
        mask = mask_for(num_patterns)
        values: dict[str, int] = {}
        for net in self._stimulus:
            values[net] = stimulus.get(net, 0) & mask
        for name, gate_type, inputs in self._schedule:
            values[name] = evaluate_packed(
                gate_type, [values[net] for net in inputs], mask
            )
        return values

    def resimulate_cone(
        self,
        base_values: Mapping[str, int],
        overrides: Mapping[str, int],
        cone: set[str],
        num_patterns: int,
    ) -> dict[str, int]:
        """Re-evaluate only the gates inside ``cone`` with some nets overridden."""
        mask = mask_for(num_patterns)
        local: dict[str, int] = {net: value & mask for net, value in overrides.items()}

        def value_of(net: str) -> int:
            if net in local:
                return local[net]
            return base_values[net]

        for name, gate_type, inputs in self._schedule:
            if name not in cone or name in local:
                continue
            local[name] = evaluate_packed(gate_type, [value_of(n) for n in inputs], mask)
        return local


class ReferenceFaultSimulator:
    """The original dict-based PPSFP stuck-at engine with fault dropping.

    Mirrors :class:`~repro.faults.fault_sim.FaultSimulator` as it existed
    before the kernel refactor: same cone caching by site net name, same
    detection semantics, same campaign bookkeeping.  Returns plain data
    (detection maps and coverage curves) so the equivalence tests can diff it
    against the production engine without sharing result classes.
    """

    def __init__(
        self,
        circuit: Circuit,
        observe_nets: Optional[Sequence[str]] = None,
    ) -> None:
        self.circuit = circuit
        self.simulator = ReferencePackedSimulator(circuit)
        self.observe_nets = (
            list(observe_nets) if observe_nets is not None else circuit.observation_nets()
        )
        self._cone_cache: dict[str, tuple[set[str], list[str]]] = {}
        #: Aggregate count of gate (re-)evaluations, for throughput reporting.
        self.gate_evals = 0

    def _cone_and_observed(self, site_net: str) -> tuple[set[str], list[str]]:
        cached = self._cone_cache.get(site_net)
        if cached is None:
            cone = self.circuit.fanout_cone(site_net)
            observed = [net for net in self.observe_nets if net in cone]
            cached = (cone, observed)
            self._cone_cache[site_net] = cached
        return cached

    def _faulty_site_value(self, fault, good_values, mask):
        if fault.is_stem:
            return fault.gate, (mask if fault.value else 0)
        gate = self.circuit.gate(fault.gate)
        inputs = []
        for pin, net in enumerate(gate.inputs):
            if pin == fault.pin:
                inputs.append(mask if fault.value else 0)
            else:
                inputs.append(good_values[net])
        if gate.is_flop:
            return gate.inputs[fault.pin], (mask if fault.value else 0)
        faulty_output = evaluate_packed(gate.gate_type, inputs, mask)
        return fault.gate, faulty_output

    def detection_mask(self, fault, good_values, num_patterns: int) -> int:
        """Packed mask of patterns (within the block) that detect ``fault``."""
        mask = mask_for(num_patterns)
        override_net, faulty_value = self._faulty_site_value(fault, good_values, mask)
        if faulty_value == good_values[override_net]:
            return 0
        cone, observed = self._cone_and_observed(override_net)
        if not observed:
            return 0
        faulty = self.simulator.resimulate_cone(
            good_values, {override_net: faulty_value}, cone, num_patterns
        )
        self.gate_evals += max(0, len(faulty) - 1)
        detection = 0
        for net in observed:
            detection |= (faulty.get(net, good_values[net]) ^ good_values[net])
        return detection & mask

    def simulate(
        self,
        fault_list,
        patterns: Sequence[Mapping[str, int]],
        block_size: int = DEFAULT_BLOCK_SIZE,
        drop_detected: bool = True,
        pattern_offset: int = 0,
    ):
        """Fault-simulate ``patterns``; returns (fault -> first detecting index, curve)."""
        detected: dict[object, int] = {}
        coverage_curve: list[tuple[int, float]] = []
        active = list(fault_list.undetected())
        simulated = 0
        stimulus_nets = self.circuit.stimulus_nets()
        for block in iter_blocks(patterns, block_size=block_size, nets=stimulus_nets):
            good = self.simulator.simulate_block(block.assignments, block.num_patterns)
            self.gate_evals += len(self.simulator._schedule)
            still_active = []
            for fault in active:
                detection = self.detection_mask(fault, good, block.num_patterns)
                if detection:
                    first_bit = (detection & -detection).bit_length() - 1
                    pattern_index = pattern_offset + simulated + first_bit
                    fault_list.mark_detected(fault, pattern_index)
                    detected[fault] = pattern_index
                    if not drop_detected:
                        still_active.append(fault)
                else:
                    still_active.append(fault)
            active = still_active
            simulated += block.num_patterns
            coverage_curve.append((pattern_offset + simulated, fault_list.coverage()))
        return detected, coverage_curve
