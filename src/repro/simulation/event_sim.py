"""Event-driven timing simulation and static arrival-time analysis.

The physical-implementation part of the paper (Section 2.3, Fig. 3) is about
*when* signals arrive: the PRPG/MISR clocks are phase-advanced with respect to
the scan-chain clock so that the PRPG-to-chain path can only fail hold and the
chain-to-MISR path can only fail setup.  To reason about that we need gate
propagation delays, which this module provides in two complementary forms:

* :func:`arrival_times` -- a static (worst-case) arrival-time computation over
  the combinational netlist, given per-stimulus-net launch times, using the
  :class:`~repro.netlist.library.CellLibrary` delay model;
* :class:`EventDrivenSimulator` -- a small event-driven simulator that applies
  timed input transitions and produces :class:`~repro.simulation.waveform.Waveform`
  traces (used for illustrative waveforms and for glitch inspection in tests).
"""

from __future__ import annotations

import heapq
from typing import Mapping, Optional

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType, evaluate_scalar
from ..netlist.library import CellLibrary
from .waveform import Waveform


def gate_delay(
    circuit: Circuit, library: CellLibrary, gate_name: str
) -> float:
    """Propagation delay of one gate instance, including fanout load."""
    gate = circuit.gate(gate_name)
    fanout = len(circuit.fanout(gate_name))
    return library.delay_ns(gate.gate_type, len(gate.inputs), max(1, fanout))


def arrival_times(
    circuit: Circuit,
    library: Optional[CellLibrary] = None,
    launch_times: Optional[Mapping[str, float]] = None,
) -> dict[str, float]:
    """Worst-case (latest) arrival time at every net.

    Parameters
    ----------
    circuit:
        The netlist; flop outputs and primary inputs are launch points.
    library:
        Delay model; defaults to :class:`CellLibrary()`.
    launch_times:
        Launch time of each stimulus net (defaults to 0.0).  This is where the
        clock-skew experiments inject per-domain clock arrival offsets.

    Returns
    -------
    dict
        Net name -> latest arrival time in nanoseconds.
    """
    library = library or CellLibrary()
    launch_times = launch_times or {}
    times: dict[str, float] = {}
    for net in circuit.stimulus_nets():
        times[net] = float(launch_times.get(net, 0.0))
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_primary_input or gate.is_flop:
            continue
        if gate.gate_type.is_source:
            times[name] = 0.0
            continue
        input_arrival = max(times[net] for net in gate.inputs)
        times[name] = input_arrival + gate_delay(circuit, library, name)
    return times


def earliest_arrival_times(
    circuit: Circuit,
    library: Optional[CellLibrary] = None,
    launch_times: Optional[Mapping[str, float]] = None,
) -> dict[str, float]:
    """Best-case (earliest) arrival time at every net (used for hold analysis)."""
    library = library or CellLibrary()
    launch_times = launch_times or {}
    times: dict[str, float] = {}
    for net in circuit.stimulus_nets():
        times[net] = float(launch_times.get(net, 0.0))
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        if gate.is_primary_input or gate.is_flop:
            continue
        if gate.gate_type.is_source:
            times[name] = 0.0
            continue
        input_arrival = min(times[net] for net in gate.inputs)
        times[name] = input_arrival + gate_delay(circuit, library, name)
    return times


class EventDrivenSimulator:
    """Small event-driven gate-level simulator with per-gate delays.

    The simulator keeps a scalar value per net, processes timed input
    transitions from an event queue, and schedules gate output updates after
    the gate's propagation delay.  It records every value change into a
    :class:`Waveform` so tests can inspect glitches and settle times.
    """

    def __init__(self, circuit: Circuit, library: Optional[CellLibrary] = None) -> None:
        self.circuit = circuit
        self.library = library or CellLibrary()
        self.values: dict[str, int] = {name: 0 for name in circuit.gates}
        self.waveform = Waveform()
        self._delay_cache: dict[str, float] = {}
        self._time = 0.0

    def _delay(self, gate_name: str) -> float:
        if gate_name not in self._delay_cache:
            self._delay_cache[gate_name] = gate_delay(self.circuit, self.library, gate_name)
        return self._delay_cache[gate_name]

    def initialise(self, values: Mapping[str, int]) -> None:
        """Set initial values (time 0) without scheduling events."""
        for net, value in values.items():
            self.values[net] = int(value) & 1
            self.waveform.signal(net, initial_value=self.values[net])

    def run(
        self,
        input_events: Mapping[str, list[tuple[float, int]]],
        settle_time_ns: float = 1000.0,
    ) -> Waveform:
        """Apply timed transitions on stimulus nets and simulate until quiet.

        Parameters
        ----------
        input_events:
            Mapping stimulus net -> list of (time, value) transitions.
        settle_time_ns:
            Safety horizon; simulation aborts past this time to guard against
            oscillation in (erroneously) cyclic circuits.

        Returns
        -------
        Waveform
            Every net's recorded transitions.
        """
        counter = 0
        queue: list[tuple[float, int, str, int]] = []
        for net, events in input_events.items():
            if net not in self.circuit.gates:
                raise KeyError(f"unknown net {net!r}")
            for time, value in events:
                heapq.heappush(queue, (float(time), counter, net, int(value) & 1))
                counter += 1

        while queue:
            time, _, net, value = heapq.heappop(queue)
            if time > settle_time_ns:
                raise RuntimeError(
                    f"simulation did not settle within {settle_time_ns} ns "
                    "(possible oscillation)"
                )
            self._time = time
            if self.values.get(net) == value:
                continue
            self.values[net] = value
            self.waveform.add_event(net, time, value)
            # Schedule re-evaluation of combinational fanout gates.
            for successor in self.circuit.fanout(net):
                gate = self.circuit.gate(successor)
                if gate.is_flop:
                    continue
                new_value = evaluate_scalar(
                    gate.gate_type, [self.values[n] for n in gate.inputs]
                ) if gate.gate_type not in (GateType.CONST0, GateType.CONST1) else (
                    1 if gate.gate_type is GateType.CONST1 else 0
                )
                heapq.heappush(
                    queue,
                    (time + self._delay(successor), counter, successor, new_value),
                )
                counter += 1
        return self.waveform

    @property
    def current_time(self) -> float:
        """Time of the last processed event."""
        return self._time
