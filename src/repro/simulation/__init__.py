"""Logic simulation substrate (S2).

Public API:

* :class:`~repro.simulation.comb_sim.PackedSimulator` -- two-valued
  pattern-parallel combinational simulation (the fault-simulation workhorse),
* :class:`~repro.simulation.comb_sim.XPropagationSimulator` -- three-valued
  (0/1/X) simulation for X-source analysis and ATPG,
* :class:`~repro.simulation.sequential.SequentialSimulator` -- cycle-accurate
  scalar simulation with per-clock-domain pulses and scan shifting,
* :class:`~repro.simulation.event_sim.EventDrivenSimulator` and
  :func:`~repro.simulation.event_sim.arrival_times` -- delay-annotated timing,
* :class:`~repro.simulation.waveform.Waveform` -- timing diagrams,
* the pattern-packing helpers in :mod:`repro.simulation.packed`.
"""

from .packed import (
    DEFAULT_BLOCK_SIZE,
    PatternBlock,
    iter_blocks,
    mask_for,
    pack_patterns,
    unpack_words,
)
from .comb_sim import PackedSimulator, XPropagationSimulator
from .sequential import SequentialSimulator
from .event_sim import EventDrivenSimulator, arrival_times, earliest_arrival_times, gate_delay
from .waveform import SignalTrace, Waveform

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "PatternBlock",
    "iter_blocks",
    "mask_for",
    "pack_patterns",
    "unpack_words",
    "PackedSimulator",
    "XPropagationSimulator",
    "SequentialSimulator",
    "EventDrivenSimulator",
    "arrival_times",
    "earliest_arrival_times",
    "gate_delay",
    "SignalTrace",
    "Waveform",
]
