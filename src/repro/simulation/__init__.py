"""Logic simulation substrate (S2).

Public API:

* :class:`~repro.simulation.kernel.CompiledKernel` -- the compiled
  integer-indexed simulation kernel: interned net IDs, flat opcode schedule,
  per-site cone plans; everything below builds on it,
* :class:`~repro.simulation.comb_sim.PackedSimulator` -- two-valued
  pattern-parallel combinational simulation (the name-keyed adapter over the
  kernel and the fault-simulation workhorse),
* :class:`~repro.simulation.comb_sim.XPropagationSimulator` -- three-valued
  (0/1/X) simulation for X-source analysis and ATPG,
* :class:`~repro.simulation.reference.ReferencePackedSimulator` /
  :class:`~repro.simulation.reference.ReferenceFaultSimulator` -- the
  preserved pre-kernel dict-based path, used as the bit-exactness oracle and
  benchmark baseline,
* :class:`~repro.simulation.sequential.SequentialSimulator` -- cycle-accurate
  scalar simulation with per-clock-domain pulses and scan shifting,
* :class:`~repro.simulation.event_sim.EventDrivenSimulator` and
  :func:`~repro.simulation.event_sim.arrival_times` -- delay-annotated timing,
* :class:`~repro.simulation.waveform.Waveform` -- timing diagrams,
* the pattern-packing helpers in :mod:`repro.simulation.packed` (the block
  width is a free parameter: 64 / 256 / 1024-bit words all work).
"""

from .packed import (
    DEFAULT_BLOCK_SIZE,
    PatternBlock,
    iter_blocks,
    mask_for,
    pack_patterns,
    unpack_words,
)
from .kernel import CompiledKernel, ConePlan, StrictStimulusError, shared_kernel
from .numpy_backend import (
    BACKENDS,
    HAVE_NUMPY,
    NUMPY_BACKEND,
    PYTHON_BACKEND,
    SimBackendError,
    resolve_backend,
)
from .comb_sim import PackedSimulator, XPropagationSimulator
from .reference import ReferenceFaultSimulator, ReferencePackedSimulator
from .sequential import SequentialSimulator
from .event_sim import EventDrivenSimulator, arrival_times, earliest_arrival_times, gate_delay
from .waveform import SignalTrace, Waveform

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "PatternBlock",
    "iter_blocks",
    "mask_for",
    "pack_patterns",
    "unpack_words",
    "CompiledKernel",
    "ConePlan",
    "StrictStimulusError",
    "shared_kernel",
    "BACKENDS",
    "HAVE_NUMPY",
    "NUMPY_BACKEND",
    "PYTHON_BACKEND",
    "SimBackendError",
    "resolve_backend",
    "PackedSimulator",
    "XPropagationSimulator",
    "ReferencePackedSimulator",
    "ReferenceFaultSimulator",
    "SequentialSimulator",
    "EventDrivenSimulator",
    "arrival_times",
    "earliest_arrival_times",
    "gate_delay",
    "SignalTrace",
    "Waveform",
]
