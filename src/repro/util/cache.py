"""The counted LRU shared by every engine/kernel/workspace cache.

:class:`KeyedLruCache` started life in :mod:`repro.campaign.runner` as the
generic core of the worker-side ``EngineCache`` and the service tier's
``ScenarioPrepCache``.  It now also bounds the numpy backend's per-width
scan workspaces (a full bit-plane table per block width -- see
``FaultScanKernel``), which sits *below* the campaign layer in the import
graph, so the class lives here in the dependency-free utility package.
``repro.campaign.runner`` re-exports both names for compatibility.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`KeyedLruCache`.

    Monotone non-decreasing; the service status endpoint exposes them, so
    they are plain ints with a dict view rather than anything fancier.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_MISSING = object()


class KeyedLruCache:
    """A small counted LRU: the generic core of every engine/kernel cache.

    ``get_or_build(key, build)`` returns the cached value for ``key`` (a
    hit, moved to most-recently-used) or calls ``build()`` and inserts the
    result (a miss); insertion beyond ``maxsize`` evicts least-recently-used
    entries.  Hits, misses and evictions are counted in :attr:`stats` --
    the observability the service tier surfaces -- and subclasses may hook
    :meth:`on_evict` to release resources an entry pinned.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self.stats = CacheStats()

    def get_or_build(self, key, build):
        """The cached value for ``key``, calling ``build()`` on a miss."""
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return value
        self.stats.misses += 1
        value = build()
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            evicted_key, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.on_evict(evicted_key, evicted)
        return value

    def on_evict(self, key, value) -> None:
        """Called for each LRU eviction (override to release resources)."""

    def discard(self, key) -> bool:
        """Drop ``key`` if cached (no eviction counted; returns presence)."""
        return self._entries.pop(key, _MISSING) is not _MISSING

    def keys(self) -> list:
        """Cached keys, least- to most-recently used (test/diagnostic hook)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
