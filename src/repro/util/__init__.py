"""Dependency-free utilities shared across subsystem layers.

Anything in here must import nothing from the rest of :mod:`repro` (and no
optional third-party packages): the simulation backends, the campaign layer
and the service tier all reach down into this package, so it sits below
every other subsystem in the import graph.
"""

from .cache import CacheStats, KeyedLruCache

__all__ = ["CacheStats", "KeyedLruCache"]
