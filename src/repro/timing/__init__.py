"""At-speed timing control (S9): clocks, clock gating, double capture, skew analysis.

Public API:

* :class:`~repro.timing.clocks.ClockDomainSpec` / :class:`~repro.timing.clocks.ClockTreeModel`
  / :func:`~repro.timing.clocks.make_clock_tree`,
* :class:`~repro.timing.double_capture.CaptureWindowScheduler` and
  :class:`~repro.timing.double_capture.CaptureSchedule` (Fig. 2),
* :class:`~repro.timing.clock_gating.ClockGatingBlock`,
* :class:`~repro.timing.skew_analysis.ShiftPathAnalyzer`,
  :func:`~repro.timing.skew_analysis.monte_carlo_violations` (Fig. 3),
* :func:`~repro.timing.waveform_gen.generate_bist_waveform` and helpers.
"""

from .clocks import ClockDomainSpec, ClockTreeModel, make_clock_tree
from .double_capture import (
    CaptureSchedule,
    CaptureWindowScheduler,
    DomainCaptureTiming,
)
from .clock_gating import ClockGatingBlock, GatedPulse
from .skew_analysis import (
    InterfaceTiming,
    MonteCarloSummary,
    ShiftPathAnalyzer,
    ShiftPathParameters,
    ShiftPathReport,
    monte_carlo_violations,
    run_skew_trials,
    sample_shift_path_report,
)
from .waveform_gen import (
    BistWaveformConfig,
    domain_capture_pulse_times,
    generate_bist_waveform,
    se_minimum_stable_time,
    se_transition_count,
    tck_signal_name,
)

__all__ = [
    "ClockDomainSpec",
    "ClockTreeModel",
    "make_clock_tree",
    "CaptureSchedule",
    "CaptureWindowScheduler",
    "DomainCaptureTiming",
    "ClockGatingBlock",
    "GatedPulse",
    "InterfaceTiming",
    "MonteCarloSummary",
    "ShiftPathAnalyzer",
    "ShiftPathParameters",
    "ShiftPathReport",
    "monte_carlo_violations",
    "run_skew_trials",
    "sample_shift_path_report",
    "BistWaveformConfig",
    "domain_capture_pulse_times",
    "generate_bist_waveform",
    "se_minimum_stable_time",
    "se_transition_count",
    "tck_signal_name",
]
