"""Clock-gating block: derives the gated test clocks from the functional clocks.

The clock-gating block of Fig. 1 takes the original functional clocks (CK1,
CK2, ...) and the controller state and produces:

* the *shift clocks* during the shift window -- one pulse per shift cycle on
  every domain, at a (typically slower) shift frequency that all domains share,
* the *capture pulses* during the capture window -- exactly the two at-speed
  pulses per domain placed by the :class:`~repro.timing.double_capture.CaptureWindowScheduler`,
* nothing at all otherwise (clocks gated off), so unrelated logic does not
  toggle during self-test.

Because gating only ever *suppresses* edges of the functional clock, every
pulse that does come through is aligned to a functional-clock edge: the model
therefore snaps the scheduled capture times onto the corresponding domain's
functional edge grid and reports the (sub-period) adjustment it had to make,
which the tests assert is always smaller than one period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .clocks import ClockTreeModel
from .double_capture import CaptureSchedule


@dataclass(frozen=True)
class GatedPulse:
    """One pulse of a gated test clock."""

    domain: str
    start_ns: float
    width_ns: float
    #: "shift" or "launch" or "capture".
    role: str


@dataclass
class ClockGatingBlock:
    """Behavioural model of the per-domain clock gating logic."""

    clock_tree: ClockTreeModel
    #: Shift-clock period shared by all domains (ns).  Shifting does not need
    #: to run at speed; 3x the slowest functional period is a comfortable
    #: default that eases SE distribution exactly as the paper intends.
    shift_period_ns: Optional[float] = None
    pulse_width_fraction: float = 0.25
    #: Sub-period adjustments made when snapping capture pulses onto the
    #: functional edge grid (filled by generate_capture_pulses).
    snap_adjustments_ns: dict[str, float] = field(default_factory=dict)

    def resolved_shift_period(self) -> float:
        """The shift-clock period actually used."""
        if self.shift_period_ns is not None:
            return self.shift_period_ns
        slowest = max(
            self.clock_tree.domain(name).period_ns for name in self.clock_tree.domain_names()
        )
        return 3.0 * slowest

    # ------------------------------------------------------------------ #
    # Shift window
    # ------------------------------------------------------------------ #
    def generate_shift_pulses(
        self, start_ns: float, shift_cycles: int
    ) -> list[GatedPulse]:
        """Shift-clock pulses for every domain (all domains shift together)."""
        if shift_cycles < 0:
            raise ValueError("shift_cycles cannot be negative")
        period = self.resolved_shift_period()
        pulses: list[GatedPulse] = []
        for cycle in range(shift_cycles):
            start = start_ns + cycle * period
            for name in self.clock_tree.domain_names():
                pulses.append(
                    GatedPulse(
                        domain=name,
                        start_ns=start,
                        width_ns=period * self.pulse_width_fraction,
                        role="shift",
                    )
                )
        return pulses

    # ------------------------------------------------------------------ #
    # Capture window
    # ------------------------------------------------------------------ #
    def generate_capture_pulses(self, schedule: CaptureSchedule) -> list[GatedPulse]:
        """The two at-speed pulses per domain, snapped onto functional edges.

        Launch-to-capture spacing is preserved exactly (both pulses snap by
        the same amount), so the at-speed property survives the snapping.
        """
        pulses: list[GatedPulse] = []
        self.snap_adjustments_ns = {}
        for timing in schedule.domains:
            spec = self.clock_tree.domain(timing.domain)
            grid = spec.period_ns
            snapped_launch = math.ceil((timing.launch_time_ns - 1e-9) / grid) * grid
            adjustment = snapped_launch - timing.launch_time_ns
            self.snap_adjustments_ns[timing.domain] = adjustment
            width = timing.pulse_width_ns
            pulses.append(
                GatedPulse(timing.domain, snapped_launch, width, role="launch")
            )
            pulses.append(
                GatedPulse(
                    timing.domain, snapped_launch + spec.period_ns, width, role="capture"
                )
            )
        return pulses

    def max_snap_adjustment_ns(self) -> float:
        """Largest snap adjustment of the last capture-pulse generation."""
        if not self.snap_adjustments_ns:
            return 0.0
        return max(abs(v) for v in self.snap_adjustments_ns.values())
