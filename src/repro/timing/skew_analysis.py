"""Shift-path skew analysis: the Fig. 3 physical-implementation technique.

During the shift window a PRPG, a scan chain and a MISR operate as one long
shift register, but the PRPG/MISR sit in the BIST clock branch (CCK) while the
scan chain is clocked by the core's own clock tree (TCK).  The relative phase
between the two branches is not tightly controlled, so two interfaces can
fail:

* PRPG -> scan chain (hold or setup, depending on which clock is earlier),
* scan chain -> MISR (the mirror image).

The paper's technique (Section 2.3) is to *always clock the PRPG and the MISR
ahead of the scan chain*.  With that phase relationship the failure modes
become one-sided:

* PRPG -> chain can only fail **hold** -- fixable by re-timing (lock-up)
  flip-flops, which add half a shift period of path delay and cost no
  functional-path performance,
* chain -> MISR can only fail **setup** -- fixable by reducing the logic depth
  between the chain output and the MISR, i.e. by *not* putting a space
  compactor there (which is exactly what Table 1's long MISRs reflect).

:class:`ShiftPathAnalyzer` evaluates both interfaces for a given phase
relationship and path delays; :func:`monte_carlo_violations` sweeps random
skew samples with and without the phase-advance technique to produce the data
behind the Fig. 3 benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..netlist.library import CellLibrary
from ..netlist.gates import GateType


@dataclass
class ShiftPathParameters:
    """Electrical parameters of one PRPG -> chain -> MISR shift path."""

    #: Shift-clock period (ns); shifting need not run at functional speed.
    shift_period_ns: float = 10.0
    #: Clock-to-Q delay of every flop (ns).
    clk_to_q_ns: float = 0.20
    #: Setup / hold requirements of every flop (ns).
    setup_ns: float = 0.10
    hold_ns: float = 0.05
    #: Max / min routing+logic delay from the PRPG (after the phase shifter)
    #: to the first scan cell (ns).
    prpg_to_chain_max_ns: float = 0.60
    prpg_to_chain_min_ns: float = 0.15
    #: Max / min routing+logic delay from the last scan cell to the MISR input,
    #: *excluding* any space compactor (ns).
    chain_to_misr_max_ns: float = 0.60
    chain_to_misr_min_ns: float = 0.15
    #: Depth of the space-compactor XOR tree on the chain->MISR path (levels).
    compactor_depth: int = 0
    #: Delay per XOR level (ns); taken from the cell library by default.
    xor_level_delay_ns: Optional[float] = None

    def resolved_xor_delay(self) -> float:
        """Per-level XOR delay, defaulting to the cell-library characterisation."""
        if self.xor_level_delay_ns is not None:
            return self.xor_level_delay_ns
        return CellLibrary().delay_ns(GateType.XOR, 2)

    def chain_to_misr_total_max(self) -> float:
        """Worst-case chain->MISR path delay including the compactor tree."""
        return self.chain_to_misr_max_ns + self.compactor_depth * self.resolved_xor_delay()

    def chain_to_misr_total_min(self) -> float:
        """Best-case chain->MISR path delay including the compactor tree."""
        return self.chain_to_misr_min_ns + self.compactor_depth * self.resolved_xor_delay()


@dataclass
class InterfaceTiming:
    """Setup/hold margins of one flop-to-flop interface (negative = violation)."""

    name: str
    setup_margin_ns: float
    hold_margin_ns: float

    @property
    def setup_violated(self) -> bool:
        """True when the worst-case path misses setup."""
        return self.setup_margin_ns < 0

    @property
    def hold_violated(self) -> bool:
        """True when the best-case path misses hold."""
        return self.hold_margin_ns < 0


@dataclass
class ShiftPathReport:
    """Timing report for one PRPG -> chain -> MISR slice."""

    prpg_to_chain: InterfaceTiming
    chain_to_misr: InterfaceTiming
    #: Phase advance of the BIST clock relative to the chain clock (ns, >=0
    #: means the PRPG/MISR clock arrives earlier).
    bist_clock_advance_ns: float = 0.0
    retiming_applied: bool = False

    @property
    def violation_kinds(self) -> list[str]:
        """Which violations the slice currently has (empty = clean)."""
        kinds = []
        if self.prpg_to_chain.setup_violated:
            kinds.append("prpg_to_chain_setup")
        if self.prpg_to_chain.hold_violated:
            kinds.append("prpg_to_chain_hold")
        if self.chain_to_misr.setup_violated:
            kinds.append("chain_to_misr_setup")
        if self.chain_to_misr.hold_violated:
            kinds.append("chain_to_misr_hold")
        return kinds

    @property
    def clean(self) -> bool:
        """True when neither interface violates setup or hold."""
        return not self.violation_kinds

    @property
    def only_fixable_violations(self) -> bool:
        """True when every violation is of the kind the paper's fixes address.

        With the phase-advance technique the only acceptable violation types
        are PRPG->chain *hold* (fixed by re-timing flops) and chain->MISR
        *setup* (fixed by removing compactor levels).
        """
        allowed = {"prpg_to_chain_hold", "chain_to_misr_setup"}
        return all(kind in allowed for kind in self.violation_kinds)


class ShiftPathAnalyzer:
    """Evaluates shift-path timing for a given BIST-vs-chain clock phase."""

    def __init__(self, parameters: Optional[ShiftPathParameters] = None) -> None:
        self.parameters = parameters or ShiftPathParameters()

    def analyze(
        self,
        chain_clock_arrival_ns: float,
        bist_clock_arrival_ns: float,
        retiming: bool = False,
    ) -> ShiftPathReport:
        """Compute margins for one slice.

        Parameters
        ----------
        chain_clock_arrival_ns:
            Arrival time of the scan-chain clock at its flops.
        bist_clock_arrival_ns:
            Arrival time of the PRPG/MISR clock.
        retiming:
            Apply the re-timing-flop fix: the lock-up stage launches on the
            opposite clock edge, adding half a shift period to the *minimum*
            PRPG->chain path (the standard hold fix).
        """
        p = self.parameters
        advance = chain_clock_arrival_ns - bist_clock_arrival_ns

        prpg_min = p.prpg_to_chain_min_ns + (p.shift_period_ns / 2 if retiming else 0.0)
        prpg_max = p.prpg_to_chain_max_ns + (p.shift_period_ns / 2 if retiming else 0.0)

        # PRPG (launch @ bist clock) -> first chain cell (capture @ chain clock).
        prpg_setup_margin = (
            (chain_clock_arrival_ns + p.shift_period_ns - p.setup_ns)
            - (bist_clock_arrival_ns + p.clk_to_q_ns + prpg_max)
        )
        prpg_hold_margin = (
            (bist_clock_arrival_ns + p.clk_to_q_ns + prpg_min)
            - (chain_clock_arrival_ns + p.hold_ns)
        )

        # Last chain cell (launch @ chain clock) -> MISR (capture @ bist clock).
        misr_setup_margin = (
            (bist_clock_arrival_ns + p.shift_period_ns - p.setup_ns)
            - (chain_clock_arrival_ns + p.clk_to_q_ns + p.chain_to_misr_total_max())
        )
        misr_hold_margin = (
            (chain_clock_arrival_ns + p.clk_to_q_ns + p.chain_to_misr_total_min())
            - (bist_clock_arrival_ns + p.hold_ns)
        )

        return ShiftPathReport(
            prpg_to_chain=InterfaceTiming("prpg_to_chain", prpg_setup_margin, prpg_hold_margin),
            chain_to_misr=InterfaceTiming("chain_to_misr", misr_setup_margin, misr_hold_margin),
            bist_clock_advance_ns=advance,
            retiming_applied=retiming,
        )


@dataclass
class MonteCarloSummary:
    """Aggregate violation counts over many skew samples."""

    trials: int = 0
    clean: int = 0
    prpg_to_chain_setup: int = 0
    prpg_to_chain_hold: int = 0
    chain_to_misr_setup: int = 0
    chain_to_misr_hold: int = 0
    only_fixable: int = 0

    def record(self, report: ShiftPathReport) -> None:
        """Accumulate one slice report."""
        self.trials += 1
        if report.clean:
            self.clean += 1
        for kind in report.violation_kinds:
            setattr(self, kind, getattr(self, kind) + 1)
        if report.only_fixable_violations:
            self.only_fixable += 1

    def absorb(self, other: "MonteCarloSummary") -> None:
        """Add another summary's counters into this one.

        Every field is an additive count, so absorbing per-shard summaries in
        any order reproduces the single-sweep summary exactly -- the property
        the campaign's sharded skew stage relies on.
        """
        self.trials += other.trials
        self.clean += other.clean
        self.prpg_to_chain_setup += other.prpg_to_chain_setup
        self.prpg_to_chain_hold += other.prpg_to_chain_hold
        self.chain_to_misr_setup += other.chain_to_misr_setup
        self.chain_to_misr_hold += other.chain_to_misr_hold
        self.only_fixable += other.only_fixable

    def as_dict(self) -> dict[str, int]:
        """Canonical integer-only view (stable keys, deterministic values)."""
        return {
            "trials": self.trials,
            "clean": self.clean,
            "prpg_to_chain_setup": self.prpg_to_chain_setup,
            "prpg_to_chain_hold": self.prpg_to_chain_hold,
            "chain_to_misr_setup": self.chain_to_misr_setup,
            "chain_to_misr_hold": self.chain_to_misr_hold,
            "only_fixable": self.only_fixable,
            "unfixable": self.unfixable,
        }

    @property
    def unfixable(self) -> int:
        """Trials with at least one violation the paper's fixes do not cover."""
        return self.trials - self.only_fixable


def monte_carlo_violations(
    parameters: ShiftPathParameters,
    skew_range_ns: float,
    trials: int,
    bist_clock_advance_ns: float = 0.0,
    retiming: bool = False,
    seed: int = 2005,
) -> MonteCarloSummary:
    """Sweep random chain-clock arrivals and count violation types.

    The chain clock arrival is sampled uniformly in ``[0, skew_range_ns]``;
    the BIST clock arrives ``bist_clock_advance_ns`` earlier than the *nominal*
    chain clock (advance 0 models an uncontrolled relationship).  This is the
    experiment behind the Fig. 3 benchmark: with the phase advance applied the
    distribution of violations collapses onto the two fixable kinds.
    """
    analyzer = ShiftPathAnalyzer(parameters)
    rng = random.Random(seed)
    summary = MonteCarloSummary()
    nominal_chain_arrival = skew_range_ns / 2
    for _ in range(trials):
        chain_arrival = rng.uniform(0.0, skew_range_ns)
        bist_arrival = nominal_chain_arrival - bist_clock_advance_ns + rng.uniform(
            -0.1 * skew_range_ns, 0.1 * skew_range_ns
        )
        report = analyzer.analyze(chain_arrival, bist_arrival, retiming=retiming)
        summary.record(report)
    return summary


def sample_shift_path_report(
    parameters: ShiftPathParameters,
    skew_range_ns: float,
    trial: int,
    seed: int = 2005,
    bist_clock_advance_ns: float = 0.0,
    retiming: bool = False,
) -> ShiftPathReport:
    """One trial-indexed Monte-Carlo shift-path sample.

    Draws the same distribution as :func:`monte_carlo_violations` but seeds a
    fresh RNG from ``(seed, trial)`` instead of advancing one sequential
    stream: trial ``k`` produces the same sample whether it runs first, last,
    or in another process.  Any partition of a trial-index range therefore
    reproduces the unsharded sweep exactly, which is what lets the campaign
    shard Fig. 3 sweeps across workers like fault shards.
    """
    rng = random.Random(f"{seed}:trial:{trial}")
    nominal_chain_arrival = skew_range_ns / 2
    chain_arrival = rng.uniform(0.0, skew_range_ns)
    bist_arrival = nominal_chain_arrival - bist_clock_advance_ns + rng.uniform(
        -0.1 * skew_range_ns, 0.1 * skew_range_ns
    )
    return ShiftPathAnalyzer(parameters).analyze(
        chain_arrival, bist_arrival, retiming=retiming
    )


def run_skew_trials(
    parameters: ShiftPathParameters,
    skew_range_ns: float,
    trials: Iterable[int],
    bist_clock_advance_ns: float = 0.0,
    retiming: bool = False,
    seed: int = 2005,
) -> MonteCarloSummary:
    """Aggregate trial-indexed skew samples for the given trial indices.

    ``run_skew_trials(p, r, range(n))`` is the serial oracle; summing (via
    :meth:`MonteCarloSummary.absorb`) the summaries of any partition of
    ``range(n)`` yields the identical counters.
    """
    summary = MonteCarloSummary()
    for trial in trials:
        summary.record(
            sample_shift_path_report(
                parameters,
                skew_range_ns,
                trial,
                seed=seed,
                bist_clock_advance_ns=bist_clock_advance_ns,
                retiming=retiming,
            )
        )
    return summary
