"""Double-capture at-speed capture-window scheduling (paper Section 2.2, Fig. 2).

The capture window contains, for every clock domain, exactly **two** pulses of
its gated test clock at the domain's *functional* period: the first pulse
launches transitions at the scan-cell outputs, the second captures the
response one functional cycle later.  Because the launch/capture spacing is
the functional period itself, no test-clock frequency manipulation is needed
-- this is what the paper calls *real* at-speed testing.

The other three intervals of Fig. 2 are free parameters with constraints:

* ``d1`` -- from the scan-enable (SE) falling edge to the first pulse of the
  first domain.  It may be arbitrarily long, which is what allows one slow SE
  to serve every domain.
* ``d3`` -- from the last pulse of one domain to the first pulse of the next.
  It must exceed the worst inter-domain clock skew so that cross-domain
  capture happens in a well-defined order without state-holding fixes.
* ``d5`` -- from the last pulse of the last domain back to the SE rising edge;
  again arbitrarily long.

:class:`CaptureWindowScheduler` turns a :class:`~repro.timing.clocks.ClockTreeModel`
into a concrete :class:`CaptureSchedule` satisfying those constraints and
exposes the per-domain pulse order that the transition-fault simulator and the
sequential simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .clocks import ClockTreeModel


@dataclass(frozen=True)
class DomainCaptureTiming:
    """The two capture pulses of one domain inside the capture window."""

    domain: str
    launch_time_ns: float
    capture_time_ns: float
    period_ns: float
    pulse_width_ns: float

    @property
    def launch_to_capture_ns(self) -> float:
        """Spacing between the two pulses -- must equal the functional period."""
        return self.capture_time_ns - self.launch_time_ns

    @property
    def is_at_speed(self) -> bool:
        """True when launch-to-capture equals the functional period (within 1 ps)."""
        return abs(self.launch_to_capture_ns - self.period_ns) < 1e-3


@dataclass
class CaptureSchedule:
    """Complete capture-window schedule across all domains."""

    #: Per-domain timings in capture order.
    domains: list[DomainCaptureTiming] = field(default_factory=list)
    #: SE falls at this time (start of the capture window).
    se_fall_ns: float = 0.0
    #: SE rises again at this time (end of the capture window).
    se_rise_ns: float = 0.0
    #: The d1..d5 intervals of Fig. 2 (d2/d4 are the functional periods).
    d1_ns: float = 0.0
    d3_ns: float = 0.0
    d5_ns: float = 0.0
    #: Worst-case inter-domain skew the schedule was built against.
    max_skew_ns: float = 0.0

    @property
    def capture_window_length_ns(self) -> float:
        """Total capture-window duration (SE low time)."""
        return self.se_rise_ns - self.se_fall_ns

    @property
    def pulse_order(self) -> list[list[str]]:
        """Ordered pulse groups for the sequential/transition simulators.

        Each domain contributes its launch and capture pulse as separate
        events; domains captured later see the updated state of earlier
        domains, exactly as the staggered hardware schedule would.
        """
        order: list[list[str]] = []
        events = []
        for timing in self.domains:
            events.append((timing.launch_time_ns, timing.domain))
            events.append((timing.capture_time_ns, timing.domain))
        for _, domain in sorted(events, key=lambda item: item[0]):
            order.append([domain])
        return order

    def timing_for(self, domain: str) -> DomainCaptureTiming:
        """Lookup the schedule entry of one domain."""
        for timing in self.domains:
            if timing.domain == domain:
                return timing
        raise KeyError(f"domain {domain!r} not in schedule")

    def validate(self) -> list[str]:
        """Check the Fig. 2 constraints; returns a list of violations (empty = ok)."""
        problems: list[str] = []
        for timing in self.domains:
            if not timing.is_at_speed:
                problems.append(
                    f"domain {timing.domain}: launch-to-capture "
                    f"{timing.launch_to_capture_ns:.3f} ns != functional period "
                    f"{timing.period_ns:.3f} ns"
                )
        for earlier, later in zip(self.domains, self.domains[1:]):
            gap = later.launch_time_ns - earlier.capture_time_ns
            if gap <= self.max_skew_ns:
                problems.append(
                    f"inter-domain gap {gap:.3f} ns between {earlier.domain} and "
                    f"{later.domain} does not exceed the max skew {self.max_skew_ns:.3f} ns"
                )
        if self.domains:
            first = self.domains[0]
            if first.launch_time_ns - self.se_fall_ns < 0:
                problems.append("first capture pulse precedes the SE falling edge")
            if self.se_rise_ns < self.domains[-1].capture_time_ns:
                problems.append("SE rises before the last capture pulse")
        return problems


@dataclass
class CaptureWindowScheduler:
    """Builds Fig. 2 capture schedules from a clock-tree model."""

    clock_tree: ClockTreeModel
    #: d1: SE fall to the first launch pulse.  Generous by default -- the whole
    #: point is that SE can be slow.
    d1_ns: float = 10.0
    #: d5: last capture pulse to SE rise.
    d5_ns: float = 10.0
    #: Safety factor applied to the worst-case skew when choosing d3.
    d3_skew_margin: float = 2.0
    #: Minimum d3 even when skew is negligible.
    d3_min_ns: float = 1.0
    #: Pulse width as a fraction of the domain period.
    pulse_width_fraction: float = 0.25

    def schedule(
        self, domain_order: Optional[Sequence[str]] = None, se_fall_ns: float = 0.0
    ) -> CaptureSchedule:
        """Produce a capture schedule.

        Parameters
        ----------
        domain_order:
            Order in which domains receive their pulse pair.  Defaults to
            slowest-first (larger periods first), which keeps the window short
            because the long at-speed gaps overlap the early part of the
            window.  Any explicit order is honoured -- the architecture works
            for all orders as long as d3 exceeds the skew bound.
        se_fall_ns:
            Absolute time of the SE falling edge (start of the capture window).
        """
        names = (
            list(domain_order)
            if domain_order is not None
            else sorted(
                self.clock_tree.domain_names(),
                key=lambda name: -self.clock_tree.domain(name).period_ns,
            )
        )
        max_skew = self.clock_tree.max_skew_overall()
        d3 = max(self.d3_min_ns, self.d3_skew_margin * max_skew)

        schedule = CaptureSchedule(
            se_fall_ns=se_fall_ns,
            d1_ns=self.d1_ns,
            d3_ns=d3,
            d5_ns=self.d5_ns,
            max_skew_ns=max_skew,
        )
        cursor = se_fall_ns + self.d1_ns
        for name in names:
            spec = self.clock_tree.domain(name)
            launch = cursor
            capture = launch + spec.period_ns
            schedule.domains.append(
                DomainCaptureTiming(
                    domain=name,
                    launch_time_ns=launch,
                    capture_time_ns=capture,
                    period_ns=spec.period_ns,
                    pulse_width_ns=spec.period_ns * self.pulse_width_fraction,
                )
            )
            cursor = capture + d3
        schedule.se_rise_ns = (cursor - d3) + self.d5_ns if names else se_fall_ns + self.d5_ns
        return schedule
