"""Clock-domain and clock-skew modelling.

The paper's at-speed scheme is defined entirely in terms of *relative* clock
edge placement: capture pulses one functional period apart, inter-domain gaps
larger than the worst inter-domain skew, PRPG/MISR clocks phase-advanced with
respect to the scan-chain clock.  This module provides the parametric model of
those quantities:

* :class:`ClockDomainSpec` -- name, functional frequency, and skew bounds of
  one clock domain (Table 1 reports 250 MHz for Core X and 330 MHz for Core Y),
* :class:`ClockTreeModel` -- per-sink insertion-delay sampling (deterministic,
  seeded) plus inter-domain skew bounds, standing in for the physical clock
  tree a real flow would extract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence


@dataclass(frozen=True)
class ClockDomainSpec:
    """Static description of one functional clock domain."""

    name: str
    frequency_mhz: float
    #: Worst-case skew between any two sinks inside this domain (ns).
    intra_domain_skew_ns: float = 0.05
    #: Nominal insertion delay of this domain's clock tree (ns).
    insertion_delay_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        if self.intra_domain_skew_ns < 0 or self.insertion_delay_ns < 0:
            raise ValueError("skew and insertion delay cannot be negative")

    @property
    def period_ns(self) -> float:
        """Functional clock period in nanoseconds."""
        return 1000.0 / self.frequency_mhz


@dataclass
class ClockTreeModel:
    """Parametric clock-tree model: per-sink arrival jitter and cross-domain skew.

    Real designs get these numbers from clock-tree synthesis reports; the model
    samples per-sink insertion delays uniformly inside
    ``insertion_delay_ns ± intra_domain_skew_ns/2`` with a seeded RNG so every
    experiment is reproducible.
    """

    domains: dict[str, ClockDomainSpec] = field(default_factory=dict)
    seed: int = 2005

    def add_domain(self, spec: ClockDomainSpec) -> None:
        """Register a clock domain."""
        self.domains[spec.name] = spec

    def domain(self, name: str) -> ClockDomainSpec:
        """Lookup a registered domain."""
        try:
            return self.domains[name]
        except KeyError as exc:
            raise KeyError(f"unknown clock domain {name!r}") from exc

    def domain_names(self) -> list[str]:
        """Registered domain names, sorted."""
        return sorted(self.domains)

    # ------------------------------------------------------------------ #
    # Skew queries
    # ------------------------------------------------------------------ #
    def max_skew_between(self, domain_a: str, domain_b: str) -> float:
        """Worst-case clock skew between sinks of two domains (ns).

        For different domains this is the difference of nominal insertion
        delays plus both intra-domain spreads (the pessimistic bound a
        physical-design team would sign off against); inside one domain it is
        the intra-domain skew.
        """
        spec_a = self.domain(domain_a)
        spec_b = self.domain(domain_b)
        if domain_a == domain_b:
            return spec_a.intra_domain_skew_ns
        return (
            abs(spec_a.insertion_delay_ns - spec_b.insertion_delay_ns)
            + spec_a.intra_domain_skew_ns / 2
            + spec_b.intra_domain_skew_ns / 2
        )

    def max_skew_overall(self) -> float:
        """Worst-case skew across any pair of registered domains."""
        names = self.domain_names()
        worst = 0.0
        for i, a in enumerate(names):
            for b in names[i:]:
                worst = max(worst, self.max_skew_between(a, b))
        return worst

    # ------------------------------------------------------------------ #
    # Monte-Carlo sink sampling
    # ------------------------------------------------------------------ #
    def sample_sink_arrivals(
        self, domain: str, num_sinks: int, trial: int = 0
    ) -> list[float]:
        """Sample per-sink clock arrival times (ns) for one domain.

        The arrival of sink *i* is the domain's nominal insertion delay plus a
        uniform jitter within ±half the intra-domain skew.  ``trial`` feeds the
        RNG so Monte-Carlo sweeps are reproducible trial by trial.
        """
        spec = self.domain(domain)
        rng = random.Random(f"{self.seed}:{domain}:{trial}")
        half = spec.intra_domain_skew_ns / 2
        return [
            spec.insertion_delay_ns + rng.uniform(-half, half) for _ in range(num_sinks)
        ]

    def sample_domain_offset(self, domain_a: str, domain_b: str, trial: int = 0) -> float:
        """Sample the (signed) arrival-time difference between two domains' trees."""
        arrivals_a = self.sample_sink_arrivals(domain_a, 1, trial)
        arrivals_b = self.sample_sink_arrivals(domain_b, 1, trial)
        return arrivals_a[0] - arrivals_b[0]


def make_clock_tree(
    frequencies_mhz: Mapping[str, float],
    intra_domain_skew_ns: float = 0.05,
    insertion_delays_ns: Optional[Mapping[str, float]] = None,
    seed: int = 2005,
) -> ClockTreeModel:
    """Convenience constructor for a clock tree from a name->frequency mapping."""
    model = ClockTreeModel(seed=seed)
    for index, (name, frequency) in enumerate(sorted(frequencies_mhz.items())):
        insertion = (
            insertion_delays_ns.get(name, 1.0 + 0.1 * index)
            if insertion_delays_ns is not None
            else 1.0 + 0.1 * index
        )
        model.add_domain(
            ClockDomainSpec(
                name=name,
                frequency_mhz=frequency,
                intra_domain_skew_ns=intra_domain_skew_ns,
                insertion_delay_ns=insertion,
            )
        )
    return model
