"""Fig. 2 waveform generation: shift window, capture window, SE, gated test clocks.

This module turns a shift-window configuration plus a
:class:`~repro.timing.double_capture.CaptureSchedule` into a
:class:`~repro.simulation.waveform.Waveform` with one trace per gated test
clock (TCK1, TCK2, ...) and one for the scan-enable SE -- the textual analogue
of the paper's Fig. 2.  The Fig. 2 benchmark and the multi-clock example
render it with :meth:`Waveform.to_ascii` and assert its structural properties
(pulse counts, at-speed spacing, slow SE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..simulation.waveform import Waveform
from .clock_gating import ClockGatingBlock
from .clocks import ClockTreeModel
from .double_capture import CaptureSchedule, CaptureWindowScheduler


@dataclass
class BistWaveformConfig:
    """Knobs for the generated waveform."""

    #: Number of shift cycles rendered before (and after) the capture window.
    shift_cycles: int = 4
    #: Gap between the last shift pulse and the SE falling edge (ns).
    se_fall_margin_ns: float = 2.0
    #: Gap between the SE rising edge and the first pulse of the next shift window (ns).
    se_rise_margin_ns: float = 2.0


def tck_signal_name(domain: str) -> str:
    """Waveform trace name for a domain's gated test clock."""
    return f"TCK_{domain}"


def generate_bist_waveform(
    clock_tree: ClockTreeModel,
    schedule: Optional[CaptureSchedule] = None,
    config: Optional[BistWaveformConfig] = None,
    scheduler: Optional[CaptureWindowScheduler] = None,
) -> tuple[Waveform, CaptureSchedule]:
    """Render one shift window + capture window + shift window.

    Returns the waveform and the capture schedule actually used (handy when it
    was created internally).
    """
    config = config or BistWaveformConfig()
    gating = ClockGatingBlock(clock_tree)
    shift_period = gating.resolved_shift_period()

    # Pre-capture shift window.
    shift_pulses = gating.generate_shift_pulses(0.0, config.shift_cycles)
    shift_end = config.shift_cycles * shift_period

    # Capture window (schedule built relative to the SE falling edge).
    se_fall = shift_end + config.se_fall_margin_ns
    if schedule is None:
        scheduler = scheduler or CaptureWindowScheduler(clock_tree)
        schedule = scheduler.schedule(se_fall_ns=se_fall)
    capture_pulses = gating.generate_capture_pulses(schedule)

    waveform = Waveform()
    # SE: high during shifting, low across the capture window, high again after.
    waveform.signal("SE", initial_value=1)
    waveform.add_event("SE", schedule.se_fall_ns, 0)
    waveform.add_event("SE", schedule.se_rise_ns, 1)

    for pulse in shift_pulses:
        waveform.add_pulse(tck_signal_name(pulse.domain), pulse.start_ns, pulse.width_ns)
    for pulse in capture_pulses:
        waveform.add_pulse(tck_signal_name(pulse.domain), pulse.start_ns, pulse.width_ns)

    # Post-capture shift window (start of the next pattern).
    next_shift_start = schedule.se_rise_ns + config.se_rise_margin_ns
    for pulse in gating.generate_shift_pulses(next_shift_start, config.shift_cycles):
        waveform.add_pulse(tck_signal_name(pulse.domain), pulse.start_ns, pulse.width_ns)

    return waveform, schedule


def se_transition_count(waveform: Waveform) -> int:
    """Number of SE transitions in the rendered window (2 per capture window)."""
    return len(waveform.signal("SE").transitions())


def se_minimum_stable_time(waveform: Waveform) -> float:
    """Shortest time SE stays at one level -- the 'slow SE' figure of merit.

    The paper's point is that d1 and d5 can be stretched so SE never needs to
    switch quickly; this helper measures the minimum stable interval so the
    benchmark can show it is orders of magnitude above a functional period.
    """
    transitions = waveform.signal("SE").transitions()
    if len(transitions) < 2:
        return float("inf")
    times = [time for time, _, _ in transitions]
    gaps = [later - earlier for earlier, later in zip(times, times[1:])]
    return min(gaps)


def domain_capture_pulse_times(waveform: Waveform, domain: str) -> list[float]:
    """Rising edges of a domain's gated clock that fall inside the SE-low window."""
    se = waveform.signal("SE")
    low_windows = []
    fall_time = None
    for time, old, new in se.transitions():
        if old == 1 and new == 0:
            fall_time = time
        elif old == 0 and new == 1 and fall_time is not None:
            low_windows.append((fall_time, time))
            fall_time = None
    rising = waveform.signal(tck_signal_name(domain)).rising_edges()
    return [
        t for t in rising if any(start <= t <= end for start, end in low_windows)
    ]
