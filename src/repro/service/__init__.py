"""Campaign-as-a-service: a long-lived front-end over the stage graph.

The :mod:`repro.campaign` schedulers run one campaign per call; this package
turns them into infrastructure:

* :mod:`repro.service.queue` -- :class:`CampaignService`, an asyncio job
  queue accepting scenario submissions and draining them through the
  existing :class:`~repro.campaign.scheduler.PooledScheduler` /
  :class:`~repro.campaign.scheduler.SerialScheduler`,
* :mod:`repro.service.events` -- the incremental event stream (stage
  start/done/error, coverage-curve deltas, section completions) published
  to subscribers *while the campaign runs*, plus the reassembler that
  rebuilds the canonical report bytes from any event interleaving,
* :mod:`repro.service.checkpoint` -- durable per-job checkpoints of the
  canonical merged partials (the :class:`~repro.campaign.scheduler.PipelineRun`
  store + expansions), so a killed service restarts and replays only the
  unfinished stages, byte-identical by test,
* :mod:`repro.service.cache` -- the service-tier prepared-scenario LRU that
  keeps compiled kernels and their ``analysis_cache`` warm across jobs
  sharing a ``Circuit.revision``.

Everything here is observability and durability *around* the campaign; the
report bytes a service job produces are identical to an in-process
:class:`~repro.campaign.runner.CampaignRunner` run of the same scenarios
(``tests/service`` pins this down with crash injection and stream replay).
"""

from .cache import ScenarioPrepCache
from .checkpoint import CheckpointStore
from .events import (
    CoverageDelta,
    EventReassembler,
    JobAccepted,
    JobCancelled,
    JobCounters,
    JobEvent,
    JobFailed,
    JobFinished,
    JobQuarantined,
    JobStarted,
    ScenarioCompleted,
    ScenarioFailed,
    SectionCompleted,
    StageFailed,
    StageFinished,
    StageRetrying,
    StageStarted,
)
from .queue import (
    TERMINAL_STATES,
    CampaignService,
    JobRecord,
    JobSpec,
    QueueFullError,
    ServiceStoppedError,
)

__all__ = [
    "CampaignService",
    "CheckpointStore",
    "CoverageDelta",
    "EventReassembler",
    "JobAccepted",
    "JobCancelled",
    "JobCounters",
    "JobEvent",
    "JobFailed",
    "JobFinished",
    "JobQuarantined",
    "JobRecord",
    "JobSpec",
    "JobStarted",
    "QueueFullError",
    "ScenarioCompleted",
    "ScenarioFailed",
    "ScenarioPrepCache",
    "SectionCompleted",
    "ServiceStoppedError",
    "StageFailed",
    "StageFinished",
    "StageRetrying",
    "StageStarted",
    "TERMINAL_STATES",
]
