"""Service-tier cross-request cache of prepared scenarios.

The per-process caches below the campaign layer (``shared_kernel`` keyed by
circuit identity + ``Circuit.revision``; the worker-side
:class:`~repro.campaign.runner.EngineCache` LRU) already stop recompiles
*within* one campaign.  What they cannot do is help the *next* request:
scan insertion copies the submitted circuit, so two jobs over the same core
prepare -- and compile -- two structurally identical circuits from scratch.

:class:`ScenarioPrepCache` closes that gap at the service tier.  It caches
the *preparation artifacts* of a scenario -- the scan-inserted
``BistReadyCore`` and the TPI-profiled
:class:`~repro.campaign.pipeline.TpiOutcome` -- keyed by the submitted
circuit's identity, its ``Circuit.revision`` and a conservative config
fingerprint.  A hit preloads those artifacts into the next job's stage
graph, which means the *same prepared circuit object* flows into the
random/top-up/at-speed phases; ``shared_kernel`` then hits by identity, so
the compiled kernel **and** every memoised ``analysis_cache`` entry
(ATPG adjacency, SCOAP guidance) are reused across requests.  Pinning the
outcome in the LRU is what keeps the kernel's weak cache entry alive
between jobs.

Correctness story: preparation is deterministic, preloading it skips stages
that would have produced equal artifacts, and the prepared objects are not
mutated by later phases (pooled stages work on pickled copies; the serial
report path reads, never writes, the prepared core) -- so cache hits and
evictions change no report byte, which ``tests/campaign/test_engine_cache.py``
pins down with a maxsize-1 thrashing run.
"""

from __future__ import annotations

import weakref
from typing import Optional

from ..campaign.runner import KeyedLruCache
from ..core.config import LogicBistConfig
from ..netlist.circuit import Circuit


def config_fingerprint(config: LogicBistConfig) -> str:
    """A conservative content key for a scenario config.

    ``repr`` of the (nested) dataclasses covers every field, so any config
    difference -- even one that could not affect preparation -- misses.
    Conservative beats clever here: a false miss costs one re-preparation,
    a false hit would corrupt a report.
    """
    return repr(config)


class ScenarioPrepCache(KeyedLruCache):
    """LRU of prepared scenarios keyed by (circuit identity, revision, config).

    ``Circuit.revision`` is a *per-object* mutation counter, not a global
    content hash, so the key alone cannot distinguish two different circuits
    that happen to share a revision number: every entry additionally holds a
    weak reference to the submitted circuit and :meth:`lookup` validates
    object identity before serving it.  A dead or mismatched referent reads
    as a miss (and is dropped), so ``id()`` reuse can never alias entries.
    """

    def __init__(self, maxsize: int = 8) -> None:
        super().__init__(maxsize)

    @staticmethod
    def _key(circuit: Circuit, config: LogicBistConfig) -> tuple:
        return (id(circuit), circuit.revision, config_fingerprint(config))

    def lookup(self, circuit: Circuit, config: LogicBistConfig) -> Optional[dict]:
        """The cached preparation artifacts, or ``None`` (counted hit/miss)."""
        key = self._key(circuit, config)
        entry = self._entries.get(key)
        if entry is not None:
            ref, artifacts = entry
            if ref() is circuit:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return artifacts
            # Stale: the original circuit died and id() was reused.
            del self._entries[key]
        self.stats.misses += 1
        return None

    def insert(self, circuit: Circuit, config: LogicBistConfig, artifacts: dict) -> None:
        """Pin ``artifacts`` (``{"core": ..., "tpi": ...}``) for reuse.

        Not counted as hit or miss -- the preceding :meth:`lookup` already
        recorded the miss this insert repairs.  Inserting over a live entry
        refreshes its LRU position and artifacts.
        """
        key = self._key(circuit, config)
        self._entries[key] = (weakref.ref(circuit), artifacts)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def preloads(
        self,
        circuit: Circuit,
        config: LogicBistConfig,
        artifact_keys: dict[str, str],
    ) -> dict[str, object]:
        """Stage-graph preloads for one scenario, ``{}`` on a miss.

        Maps the scenario's ``core``/``tpi`` node keys (from
        :func:`~repro.campaign.pipeline.scenario_stage_nodes`) to the cached
        artifacts, ready to pass as the scheduler's ``preloaded`` mapping.
        """
        artifacts = self.lookup(circuit, config)
        if artifacts is None:
            return {}
        return {
            artifact_keys["core"]: artifacts["core"],
            artifact_keys["tpi"]: artifacts["tpi"],
        }

    def harvest(
        self,
        circuit: Circuit,
        config: LogicBistConfig,
        run,
        artifact_keys: dict[str, str],
    ) -> None:
        """Insert a finished run's preparation artifacts for the next job.

        ``run`` is the completed
        :class:`~repro.campaign.scheduler.PipelineRun`; re-inserting after a
        cache-hit run is harmless (same objects, refreshed LRU slot).
        """
        try:
            artifacts = {
                "core": run.value(artifact_keys["core"]),
                "tpi": run.value(artifact_keys["tpi"]),
            }
        except KeyError:
            return
        self.insert(circuit, config, artifacts)
