"""The asyncio campaign service: submit, stream, checkpoint, resume.

:class:`CampaignService` is the long-lived front-end over the stage-graph
schedulers.  Submissions (lists of
:class:`~repro.campaign.runner.CampaignScenario`) enter an asyncio queue;
one drain task executes jobs in submission order, each job building the
same multi-scenario DAG a :class:`~repro.campaign.runner.CampaignRunner`
would and draining it through a
:class:`~repro.campaign.scheduler.PooledScheduler` (or the serial walk).
The blocking schedule runs in a worker thread (``asyncio.to_thread``);
a :class:`~repro.campaign.scheduler.StageObserver` bridges its progress
back onto the event loop with ``call_soon_threadsafe``, so subscribers see
stage starts/finishes, coverage-curve deltas and section completions *live*
(:mod:`repro.service.events`).

Durability: with a checkpoint directory, every job persists its spec at
submission, a consistent merged-partials snapshot every
``checkpoint_every`` finished stages, and the final canonical report bytes
(:mod:`repro.service.checkpoint`).  A service killed mid-job restarts,
recovers the pending jobs from disk, preloads the checkpointed artifacts
and replayed expansions into a fresh schedule, and re-executes only the
unfinished stages -- the resumed report bytes are identical to an
uninterrupted run (``tests/service/test_checkpoint_resume.py``).

Scenario keys are **deterministic** here (``<job_id>/s<i>:<name>``), unlike
the invocation-unique keys of the one-shot runner: a resumed schedule must
address the same artifacts the crashed one checkpointed.

Job lifecycle (PR 10): every job moves through the state machine
``queued -> running -> finished | partial | failed | cancelled | timeout |
quarantined``.  :meth:`CampaignService.cancel` removes a queued job or
cooperatively stops a running one (a :class:`~repro.campaign.scheduler.
CancelToken` threaded into the scheduler's completion loop stops it at the
next stage boundary, checkpointed); a job-level deadline
(:attr:`~repro.core.config.ServiceConfig.job_deadline_s` or the per-submit
override) takes the same path into the ``"timeout"`` state;
``stop(mode="cancel", timeout_s=...)`` bounds shutdown by
checkpoint-stopping the in-flight job (it stays *pending* on disk, so a
restart resumes it); and recovery quarantines a job resumed more than
:attr:`~repro.core.config.ServiceConfig.max_resume_attempts` times instead
of letting a poison spec crash-loop the service.  Cancelled/timed-out jobs
persist a terminal marker (``state.json``) so a restart surfaces them
instead of silently resuming; an explicit :meth:`CampaignService.resume`
clears the marker and re-runs from the checkpoint -- byte-identical to an
uninterrupted run (``tests/service/test_lifecycle.py``).
"""

from __future__ import annotations

import asyncio
import itertools
import re
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..campaign.pipeline import (
    RandomPhaseOutcome,
    TransitionOutcome,
    release_scenario_engines,
    scenario_stage_nodes,
)
from ..campaign.results import (
    FAILURES_KEY,
    CampaignResult,
    ScenarioResult,
    canonical_failure,
    sort_failures,
)
from ..campaign.chaos import ServiceCrashError
from ..campaign.runner import CampaignScenario
from ..campaign.scheduler import (
    CancelToken,
    PooledScheduler,
    ScheduleCancelled,
    SerialScheduler,
    StageObserver,
)
from ..core.config import ServiceConfig
from ..netlist.library import CellLibrary
from .cache import ScenarioPrepCache
from .checkpoint import CheckpointStore
from .events import (
    TERMINAL_EVENTS,
    CoverageDelta,
    JobAccepted,
    JobCancelled,
    JobCounters,
    JobEvent,
    JobFailed,
    JobFinished,
    JobQuarantined,
    JobStarted,
    ScenarioCompleted,
    ScenarioFailed,
    SectionCompleted,
    StageFailed,
    StageFinished,
    StageRetrying,
    StageStarted,
    report_checksum,
)

_JOB_ID_PATTERN = re.compile(r"^job-(\d+)$")

#: Every terminal state of the job state machine.  ``"partial"`` is a
#: *successful* terminal state (degraded scenarios, canonical ``failures``
#: report section); the last four are the PR-10 lifecycle states.
TERMINAL_STATES = (
    "finished",
    "partial",
    "failed",
    "cancelled",
    "timeout",
    "quarantined",
)


class ServiceStoppedError(RuntimeError):
    """Submission rejected because :meth:`CampaignService.stop` has begun.

    Before this error existed a job enqueued behind the shutdown sentinel
    was *accepted* but never executed -- stuck in ``"queued"`` forever.
    """


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity.

    Carries ``depth`` (the configured
    :attr:`~repro.core.config.ServiceConfig.max_queue_depth`) and ``qsize``
    (the occupancy observed at submission), so callers can implement their
    own backpressure; or pass ``submit(..., wait=True)`` to await capacity
    instead of handling this error.
    """

    def __init__(self, depth: int, qsize: int) -> None:
        super().__init__(
            f"job queue is full (max_queue_depth={depth}, queued={qsize})"
        )
        self.depth = depth
        self.qsize = qsize


@dataclass(frozen=True)
class JobSpec:
    """The durable submission record: everything needed to (re-)run a job.

    ``deadline_s`` is the job's resolved wall-clock budget (per-submit
    override, else the service default at submission time; ``None`` =
    unbounded).  It lives in the spec so a restart enforces the same budget
    the submitter asked for.
    """

    job_id: str
    scenarios: tuple
    deadline_s: Optional[float] = None


class JobRecord:
    """In-memory state of one job: its spec, event log and final artifacts.

    Event ``seq`` numbers are allocated from the record (strictly
    increasing per job); events are appended only on the event loop thread,
    so readers on that thread never see partial updates.
    """

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.job_id = spec.job_id
        #: "queued" -> "running" -> one of :data:`TERMINAL_STATES`.
        #: "partial" is a *successful* terminal state in which one or more
        #: scenarios were degraded after exhausting their retries; the
        #: report carries their canonical failure records instead.
        self.state = "queued"
        self.events: list[JobEvent] = []
        self.counters = JobCounters()
        self.result: Optional[CampaignResult] = None
        self.report: Optional[bytes] = None
        self.error: Optional[str] = None
        self.resumed = False
        self.preloaded_stages = 0
        #: The running job's cooperative-stop handle (set by the drain task
        #: just before execution; ``None`` while queued/terminal).
        self.cancel_token: Optional[CancelToken] = None
        #: Open ``stream()`` iterators; a terminal record with subscribers
        #: is never pruned (they'd hang on a dropped event log).
        self.subscribers = 0
        self._seq = itertools.count()
        self._new_event = asyncio.Event()

    def next_seq(self) -> int:
        return next(self._seq)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES


class _JobEmitter:
    """Constructs sequenced events in the worker thread and hands them off.

    ``sink`` must be thread-safe (the service passes a
    ``call_soon_threadsafe`` bridge); one emitter serves one job execution,
    and jobs execute one at a time, so seq allocation needs no locking.
    """

    def __init__(self, job_id: str, next_seq, sink, chunk: int) -> None:
        self.job_id = job_id
        self._next_seq = next_seq
        self._sink = sink
        self.chunk = chunk

    def emit(self, event_type, **fields) -> JobEvent:
        event = event_type(job_id=self.job_id, seq=self._next_seq(), **fields)
        self._sink(event)
        return event

    def emit_curve(self, scenario: str, section: str, curve) -> None:
        """Stream one coverage curve as consecutive chunked deltas."""
        points = [tuple(point) for point in curve]
        for start in range(0, len(points), self.chunk):
            chunk = tuple(points[start : start + self.chunk])
            self.emit(
                CoverageDelta,
                scenario=scenario,
                section=section,
                start_index=start,
                points=chunk,
                coverage=chunk[-1][1],
            )


class _JobObserver(StageObserver):
    """Bridges one schedule's progress into events and checkpoints.

    Content events are dispatched on artifact *type* as stages land
    (:class:`~repro.campaign.pipeline.RandomPhaseOutcome` -> ``random``
    curve deltas, :class:`~repro.campaign.pipeline.TransitionOutcome` ->
    ``transition`` deltas, :class:`~repro.campaign.results.ScenarioResult`
    -> section completions + scenario checksum).  On a resumed schedule the
    preloaded artifacts never re-execute, so :meth:`on_run_begin` replays
    their content events from the restored store -- a fresh subscriber's
    stream still reassembles into the *full* canonical report.
    """

    def __init__(
        self,
        emitter: _JobEmitter,
        scenario_artifacts,
        checkpoints: Optional[CheckpointStore],
        job_id: str,
        checkpoint_every: int,
        scenario_keys: Optional[dict] = None,
        cancel_token: Optional[CancelToken] = None,
        lifecycle_chaos=None,
    ) -> None:
        self._emitter = emitter
        #: ``(scenario name, artifact-key mapping)`` per scenario, in
        #: submission order -- the replay walk on resume.
        self._scenario_artifacts = list(scenario_artifacts)
        self._checkpoints = checkpoints
        self._job_id = job_id
        self._checkpoint_every = checkpoint_every
        #: scenario name -> scenario graph key, for canonical failure
        #: records (the scenario prefix is stripped from failing stages).
        self._scenario_keys = dict(scenario_keys or {})
        self._cancel_token = cancel_token
        #: Optional :class:`~repro.campaign.chaos.LifecycleChaosPlan`:
        #: service-tier fault injection (cancel / deadline / crash) at the
        #: exact stage boundaries the lifecycle machinery acts on.
        self._lifecycle_chaos = lifecycle_chaos
        self._since_save = 0
        self._run = None

    # -- schedule callbacks -------------------------------------------- #
    def on_run_begin(self, run) -> None:
        self._run = run
        for name, keys in self._scenario_artifacts:
            for logical in ("fault_sim", "transition", "report"):
                key = keys.get(logical)
                if key is None:
                    continue
                resolved = run.resolve_key(key)
                if resolved in run.store:
                    self._emit_content(name, run.store[resolved])

    def on_stage_start(self, node) -> None:
        self._emitter.emit(
            StageStarted, stage=node.key, phase=node.phase, scenario=node.scenario
        )
        self._inject_lifecycle(node, "start")

    def on_stage_finish(self, node, value, seconds: float) -> None:
        self._emitter.emit(
            StageFinished,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            seconds=seconds,
        )
        self._emit_content(node.scenario, value)
        if self._checkpoints is not None:
            self._since_save += 1
            if self._since_save >= self._checkpoint_every:
                self._checkpoints.save_progress(self._job_id, self._run)
                self._since_save = 0
        # After the checkpoint write, so an injected crash/cancel lands in
        # the worst spot: progress durable, stage done, job not finished.
        self._inject_lifecycle(node, "finish")

    def _inject_lifecycle(self, node, event: str) -> None:
        """Apply a service-tier chaos action at this stage boundary."""
        if self._lifecycle_chaos is None:
            return
        action = self._lifecycle_chaos.action_for(node.key, event)
        if action is None:
            return
        if action == "crash":
            raise ServiceCrashError(
                f"injected service crash at {node.key} ({event})"
            )
        if self._cancel_token is not None:
            self._cancel_token.cancel(
                "timeout" if action == "deadline" else "cancelled"
            )

    def on_stage_error(self, node, error: BaseException) -> None:
        self._emitter.emit(
            StageFailed,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            error=str(error),
        )

    def on_stage_retry(self, node, error, attempt: int, delay_s: float) -> None:
        self._emitter.emit(
            StageRetrying,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            attempt=attempt,
            delay_s=delay_s,
            error=str(error),
        )

    def on_stage_failed(self, node, error, failure) -> None:
        """A stage exhausted its retries and its scenario was degraded."""
        self._emitter.emit(
            StageFailed,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            error=str(error),
        )
        scenario_key = self._scenario_keys.get(node.scenario, "")
        self._emitter.emit(
            ScenarioFailed,
            scenario=node.scenario,
            failure=canonical_failure(failure, scenario_key),
        )

    # -- content dispatch ---------------------------------------------- #
    def _emit_content(self, scenario: str, value) -> None:
        if isinstance(value, RandomPhaseOutcome):
            self._emitter.emit_curve(scenario, "random", value.result.coverage_curve)
        elif isinstance(value, TransitionOutcome):
            self._emitter.emit_curve(scenario, "transition", value.coverage_curve)
        elif isinstance(value, ScenarioResult):
            for section, payload in value.canonical_sections().items():
                self._emitter.emit(
                    SectionCompleted,
                    scenario=scenario,
                    section=section,
                    payload=payload,
                )
            self._emitter.emit(
                ScenarioCompleted,
                scenario=scenario,
                checksum=report_checksum(value.report_bytes()),
            )


class CampaignService:
    """Long-lived asyncio front-end over the campaign stage graph.

    Parameters mirror :class:`~repro.campaign.runner.CampaignRunner`
    (worker count, shard geometry, mp context) plus the service tier:
    ``checkpoint_dir`` enables durability/resume, ``service_config``
    (:class:`~repro.core.config.ServiceConfig`) tunes checkpoint cadence,
    event chunking and cache sizes.  Use as::

        service = CampaignService(checkpoint_dir=path)
        await service.start()
        job_id = await service.submit([CampaignScenario(...), ...])
        async for event in service.stream(job_id):
            ...
        record = await service.wait(job_id)
        await service.stop()
    """

    def __init__(
        self,
        num_workers: int = 1,
        fault_shards: Optional[int] = None,
        pattern_shards: int = 1,
        checkpoint_dir=None,
        service_config: Optional[ServiceConfig] = None,
        mp_context=None,
        chaos=None,
        lifecycle_chaos=None,
    ) -> None:
        self.num_workers = num_workers
        #: Optional :class:`~repro.campaign.chaos.ChaosPlan` threaded into
        #: every job's scheduler (testing/fault-drill hook; None in prod).
        self.chaos = chaos
        #: Optional :class:`~repro.campaign.chaos.LifecycleChaosPlan`:
        #: service-tier injections (cancel/deadline/crash at stage
        #: boundaries) driving the lifecycle test suite; None in prod.
        self.lifecycle_chaos = lifecycle_chaos
        self.fault_shards = (
            fault_shards if fault_shards is not None else max(1, num_workers)
        )
        self.pattern_shards = pattern_shards
        self.mp_context = mp_context
        self.config = service_config or ServiceConfig()
        self.library = CellLibrary()
        self.checkpoints = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.prep_cache = ScenarioPrepCache(self.config.kernel_cache_size)
        self._jobs: dict[str, JobRecord] = {}
        self._totals = JobCounters()
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._job_counter = itertools.count(1)
        #: True once stop() has begun: submissions are rejected with
        #: ServiceStoppedError instead of stranding behind the sentinel.
        self._stopping = False
        #: True in stop(mode="cancel"): the drain skips still-queued jobs
        #: (they stay pending on disk; a restart resumes them).
        self._stop_cancel = False
        #: The record currently executing in the worker thread, if any.
        self._current: Optional[JobRecord] = None
        #: Set whenever queue occupancy drops; submit(wait=True) awaits it.
        self._capacity: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> list[str]:
        """Start draining; recover and re-enqueue checkpointed pending jobs.

        Returns the re-enqueued job ids (oldest first).  Recovered jobs run
        before anything submitted afterwards and resume from their last
        progress snapshot.  Jobs whose durable lifecycle record says they
        were cancelled or timed out are surfaced as terminal records (not
        resumed -- an explicit :meth:`resume` restarts them); a job
        recovered-and-started more than
        :attr:`~repro.core.config.ServiceConfig.max_resume_attempts` times
        is quarantined instead of re-enqueued, so a poison spec cannot
        crash-loop the service.
        """
        if self._drain_task is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._capacity = asyncio.Event()
        self._stopping = False
        self._stop_cancel = False
        self._current = None
        recovered: list[str] = []
        if self.checkpoints is not None:
            highest = 0
            for job_id in self.checkpoints.job_ids():
                match = _JOB_ID_PATTERN.match(job_id)
                if match:
                    highest = max(highest, int(match.group(1)))
            self._job_counter = itertools.count(highest + 1)
            for job_id in self.checkpoints.pending_jobs():
                spec = self.checkpoints.load_spec(job_id)
                if spec is None:
                    continue
                record = JobRecord(spec)
                self._jobs[job_id] = record
                self._record_event(
                    record,
                    JobAccepted(
                        job_id=job_id,
                        seq=record.next_seq(),
                        position=self._queue.qsize(),
                    ),
                )
                lifecycle = self.checkpoints.load_lifecycle(job_id)
                state = lifecycle.get("state")
                if state in ("cancelled", "timeout"):
                    # Stopped on purpose: surface the terminal record, keep
                    # the checkpoint, and wait for an explicit resume().
                    self._record_event(
                        record,
                        JobCancelled(
                            job_id=job_id,
                            seq=record.next_seq(),
                            reason=lifecycle.get("reason") or state,
                            checkpointed=self.checkpoints.has_progress(job_id),
                        ),
                    )
                    continue
                attempts = int(lifecycle.get("resume_attempts", 0))
                if state != "quarantined" and lifecycle.get("started"):
                    # The previous run *began executing* and never reached a
                    # terminal state: this recovery burns a resume attempt.
                    # Jobs that merely waited in the queue don't.
                    attempts = self.checkpoints.bump_resume_attempts(job_id)
                if state == "quarantined" or attempts > self.config.max_resume_attempts:
                    if state != "quarantined":
                        self.checkpoints.mark_state(
                            job_id, "quarantined", "crash-loop"
                        )
                    self._record_event(
                        record,
                        JobQuarantined(
                            job_id=job_id,
                            seq=record.next_seq(),
                            resume_attempts=attempts,
                            limit=self.config.max_resume_attempts,
                        ),
                    )
                    continue
                record.resumed = True
                self._queue.put_nowait(record)
                recovered.append(job_id)
        self._drain_task = asyncio.create_task(self._drain())
        return recovered

    async def stop(
        self, mode: str = "drain", timeout_s: Optional[float] = None
    ) -> None:
        """Stop the service (idempotent); submissions are rejected at once.

        ``mode="drain"`` (default) keeps the historical semantics: every
        queued job runs to completion first.  ``mode="cancel"`` bounds
        shutdown instead: the in-flight job is cooperatively stopped at its
        next stage boundary and checkpointed, still-queued jobs are skipped
        -- both stay *pending* on disk (no terminal marker), so the next
        :meth:`start` resumes them where they left off.

        ``timeout_s`` bounds the wait.  A drain that overruns it escalates
        to the cancel path and waits one more ``timeout_s``; if the stop
        still hasn't completed (a stage blocking past every deadline),
        ``asyncio.TimeoutError`` propagates with the drain task intact --
        call ``stop()`` again to keep waiting.
        """
        if mode not in ("drain", "cancel"):
            raise ValueError(f"unknown stop mode {mode!r}")
        if self._drain_task is None:
            return
        assert self._queue is not None
        if not self._stopping:
            self._stopping = True
            self._queue.put_nowait(None)
            self._notify_capacity()  # wake submit(wait=True) waiters
        if mode == "cancel":
            self._begin_stop_cancel()
        drain = self._drain_task
        if timeout_s is None:
            await drain
        else:
            try:
                await asyncio.wait_for(asyncio.shield(drain), timeout_s)
            except asyncio.TimeoutError:
                if self._stop_cancel:
                    raise
                self._begin_stop_cancel()
                await asyncio.wait_for(asyncio.shield(drain), timeout_s)
        self._drain_task = None

    def _begin_stop_cancel(self) -> None:
        """Switch shutdown to the cancel path (loop thread only)."""
        self._stop_cancel = True
        current = self._current
        if current is not None and current.cancel_token is not None:
            # "shutdown" deliberately writes NO terminal marker: the job
            # stays pending on disk and the next start() resumes it.
            current.cancel_token.cancel("shutdown")

    # ------------------------------------------------------------------ #
    # Submission / observation
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        scenarios: Iterable[CampaignScenario],
        job_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        wait: bool = False,
    ) -> str:
        """Queue a campaign; returns its job id immediately.

        ``deadline_s`` overrides the service-wide
        :attr:`~repro.core.config.ServiceConfig.job_deadline_s` wall-clock
        budget for this job.  With a bounded queue, ``wait=True`` awaits
        capacity instead of raising :class:`QueueFullError`.  Raises
        :class:`ServiceStoppedError` once :meth:`stop` has begun.
        """
        if self._queue is None:
            raise RuntimeError("service not started; await service.start() first")
        if self._stopping:
            raise ServiceStoppedError("service is stopping; submission rejected")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValueError("a job needs at least one scenario")
        names = [scenario.name for scenario in scenarios]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate scenario names {duplicates!r}: results are keyed "
                "by name, so every scenario needs a distinct one"
            )
        if FAILURES_KEY in names:
            raise ValueError(
                f"scenario name {FAILURES_KEY!r} is reserved for the "
                "report's degraded-scenario section"
            )
        depth = self.config.max_queue_depth
        if depth:
            if wait:
                # Everything that changes qsize runs on this loop thread and
                # sets _capacity afterwards, so clear-then-wait cannot lose
                # a wakeup.
                while self._queue.qsize() >= depth:
                    assert self._capacity is not None
                    self._capacity.clear()
                    await self._capacity.wait()
                    if self._stopping:
                        raise ServiceStoppedError(
                            "service stopped while awaiting queue capacity"
                        )
            elif self._queue.qsize() >= depth:
                raise QueueFullError(depth=depth, qsize=self._queue.qsize())
        if job_id is None:
            job_id = f"job-{next(self._job_counter):06d}"
        if job_id in self._jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        if deadline_s is None:
            deadline_s = self.config.job_deadline_s
        spec = JobSpec(job_id=job_id, scenarios=scenarios, deadline_s=deadline_s)
        record = JobRecord(spec)
        self._jobs[job_id] = record
        if self.checkpoints is not None:
            self.checkpoints.save_spec(job_id, spec)
        self._record_event(
            record,
            JobAccepted(
                job_id=job_id, seq=record.next_seq(), position=self._queue.qsize()
            ),
        )
        self._queue.put_nowait(record)
        return job_id

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; ``False`` if already terminal.

        A queued job becomes ``"cancelled"`` immediately (the drain skips
        its record).  A running job is stopped *cooperatively*: its
        :class:`~repro.campaign.scheduler.CancelToken` is latched and the
        scheduler raises out of its completion loop at the next stage
        boundary -- in-flight pool stages are abandoned, the pool stays
        healthy, and the job checkpoints its progress before landing in
        ``"cancelled"`` with a :class:`~repro.service.events.JobCancelled`
        event.  Await :meth:`wait` for the terminal state; :meth:`resume`
        restarts from the checkpoint, byte-identical to a clean run.
        """
        record = self.job(job_id)
        if record.done:
            return False
        if record.state == "queued":
            # Terminal marker first: if we die between these two writes the
            # restart still honours the cancellation.
            if self.checkpoints is not None:
                self.checkpoints.mark_state(job_id, "cancelled", "cancelled")
            self._record_event(
                record,
                JobCancelled(
                    job_id=job_id,
                    seq=record.next_seq(),
                    reason="cancelled",
                    checkpointed=False,
                ),
            )
            return True
        token = record.cancel_token
        if token is None:  # pragma: no cover - running implies a token
            return False
        token.cancel("cancelled")
        return True

    async def resume(
        self, job_id: str, deadline_s: Optional[float] = None
    ) -> str:
        """Re-enqueue a terminal (cancelled/timed-out/failed/quarantined)
        job; it resumes from its checkpoint.

        This is the explicit operator override: it clears the durable
        lifecycle record (terminal marker *and* resume-attempt counter), so
        it also releases a quarantined job for one more supervised run.
        ``deadline_s`` replaces the job's persisted deadline (``None``
        keeps it).  Returns the job id.
        """
        if self._queue is None:
            raise RuntimeError("service not started; await service.start() first")
        if self._stopping:
            raise ServiceStoppedError("service is stopping; resume rejected")
        old = self._jobs.get(job_id)
        if old is not None and not old.done:
            raise ValueError(f"job {job_id!r} is {old.state}; nothing to resume")
        spec = self.checkpoints.load_spec(job_id) if self.checkpoints else None
        if spec is None and old is not None:
            spec = old.spec
        if spec is None:
            raise KeyError(f"unknown job {job_id!r}")
        if deadline_s is not None:
            if deadline_s <= 0:
                raise ValueError("deadline_s must be positive")
            # Rebuild rather than dataclasses.replace: a legacy pickled
            # spec may predate the deadline_s field.
            spec = JobSpec(
                job_id=spec.job_id,
                scenarios=spec.scenarios,
                deadline_s=deadline_s,
            )
        record = JobRecord(spec)
        record.resumed = True
        self._jobs[job_id] = record
        if self.checkpoints is not None:
            self.checkpoints.clear_lifecycle(job_id)
            if deadline_s is not None:
                self.checkpoints.save_spec(job_id, spec)
        self._record_event(
            record,
            JobAccepted(
                job_id=job_id, seq=record.next_seq(), position=self._queue.qsize()
            ),
        )
        self._queue.put_nowait(record)
        return job_id

    def job(self, job_id: str) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    async def stream(self, job_id: str):
        """Async-iterate a job's events: full history, then live to the end.

        Yields every recorded event from ``seq`` 0 (late subscribers replay
        the log first) and terminates after the job's terminal event.
        """
        record = self.job(job_id)
        record.subscribers += 1
        try:
            index = 0
            while True:
                record._new_event.clear()
                if index < len(record.events):
                    event = record.events[index]
                    index += 1
                    yield event
                    if isinstance(event, TERMINAL_EVENTS):
                        return
                    continue
                await record._new_event.wait()
        finally:
            record.subscribers -= 1

    async def wait(self, job_id: str) -> JobRecord:
        """Block until the job reaches a terminal state; returns its record."""
        record = self.job(job_id)
        while True:
            record._new_event.clear()
            if record.done:
                return record
            await record._new_event.wait()

    def report_bytes(self, job_id: str) -> Optional[bytes]:
        """The finished job's canonical report bytes (memory, then disk)."""
        record = self._jobs.get(job_id)
        if record is not None and record.report is not None:
            return record.report
        if self.checkpoints is not None:
            return self.checkpoints.load_report(job_id)
        return None

    def status(self) -> dict:
        """Service-level observability snapshot (the "status endpoint").

        Counters and cache statistics are monotone; ``engine_cache`` reports
        the parent process's shard-engine LRU (pool workers hold their own).
        """
        from ..campaign.runner import _ENGINE_CACHE

        return {
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "stopping": self._stopping,
            "jobs": {
                job_id: record.state for job_id, record in sorted(self._jobs.items())
            },
            "counters": self._totals.as_dict(),
            "prep_cache": {
                **self.prep_cache.stats.as_dict(),
                "entries": len(self.prep_cache),
            },
            "engine_cache": {
                **_ENGINE_CACHE.stats.as_dict(),
                "entries": len(_ENGINE_CACHE),
            },
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    async def _drain(self) -> None:
        assert self._queue is not None
        while True:
            record = await self._queue.get()
            try:
                if record is None:
                    return
                # Cancelled-while-queued records stay in the queue but are
                # already terminal; in stop(mode="cancel") every queued job
                # is skipped (still pending on disk -> a restart resumes).
                if record.done or self._stop_cancel:
                    continue
                # Synchronously on the loop thread, before the worker
                # thread exists: cancel() observing "queued" may safely
                # terminalize the record, and observing "running" has a
                # token to latch -- no window between the two.
                record.state = "running"
                record.cancel_token = CancelToken()
                self._current = record
                try:
                    await asyncio.to_thread(self._execute_job, record)
                finally:
                    self._current = None
                    record.cancel_token = None
            finally:
                self._queue.task_done()
                self._notify_capacity()
                self._prune_records()

    def _notify_capacity(self) -> None:
        """Wake submit(wait=True) waiters after occupancy drops."""
        if self._capacity is not None:
            self._capacity.set()

    def _record_event(self, record: JobRecord, event: JobEvent) -> None:
        """Append one event (event-loop thread only) and wake subscribers."""
        record.events.append(event)
        record.counters.observe(event)
        self._totals.observe(event)
        if isinstance(event, JobStarted):
            record.state = "running"
            record.resumed = event.resumed
            record.preloaded_stages = event.preloaded_stages
        elif isinstance(event, JobFinished):
            record.state = "partial" if event.partial else "finished"
        elif isinstance(event, JobFailed):
            record.state = "failed"
            record.error = event.error
        elif isinstance(event, JobCancelled):
            record.state = "timeout" if event.reason == "timeout" else "cancelled"
        elif isinstance(event, JobQuarantined):
            record.state = "quarantined"
        record._new_event.set()

    def _prune_records(self) -> None:
        """Forget the oldest terminal jobs beyond ``retain_jobs``.

        Only in-memory records are pruned; checkpointed reports stay on
        disk and remain readable through :meth:`report_bytes`.  A record
        with an open :meth:`stream` subscriber is never evicted -- the
        subscriber would hang mid-replay on a dropped event log.
        """
        done = [
            job_id
            for job_id, record in self._jobs.items()
            if record.done and record.subscribers == 0
        ]
        excess = len(done) - self.config.retain_jobs
        for job_id in done[:max(0, excess)]:
            del self._jobs[job_id]

    def _execute_job(self, record: JobRecord) -> None:
        """Run one job to completion (worker thread; blocking)."""
        assert self._loop is not None
        loop = self._loop

        def sink(event: JobEvent) -> None:
            loop.call_soon_threadsafe(self._record_event, record, event)

        emitter = _JobEmitter(
            record.job_id, record.next_seq, sink, self.config.event_chunk
        )
        start = time.perf_counter()
        scenario_keys: list[str] = []
        token = record.cancel_token or CancelToken()
        # Per-execution wall-clock budget (per-submit override baked into
        # the spec at submission; config default covers legacy specs).
        deadline_s = getattr(record.spec, "deadline_s", None)
        if deadline_s is None:
            deadline_s = self.config.job_deadline_s
        token.arm_deadline(deadline_s)
        try:
            if self.checkpoints is not None:
                # From here on, dying without a terminal state burns one of
                # the job's resume attempts at the next recovery.
                self.checkpoints.mark_started(record.job_id)
            nodes = []
            scenario_meta = []
            preloads: dict[str, object] = {}
            for index, scenario in enumerate(record.spec.scenarios):
                key = f"{record.job_id}/s{index}:{scenario.name}"
                scenario_keys.append(key)
                scenario_nodes, artifact_keys = scenario_stage_nodes(
                    key,
                    scenario.circuit,
                    scenario.config,
                    library=self.library,
                    scenario_name=scenario.name,
                    fault_shards=self.fault_shards,
                    pattern_shards=self.pattern_shards,
                    num_workers=self.num_workers,
                    include_topup=scenario.config.campaign_topup,
                    include_report=True,
                )
                nodes.extend(scenario_nodes)
                scenario_meta.append((scenario, artifact_keys))
                preloads.update(
                    self.prep_cache.preloads(
                        scenario.circuit, scenario.config, artifact_keys
                    )
                )

            progress = (
                self.checkpoints.load_progress(record.job_id)
                if self.checkpoints is not None
                else None
            )
            expansions = None
            if progress is not None:
                # Checkpointed values win over cache preloads: the restored
                # store is one identity-consistent snapshot.
                preloads = {**preloads, **progress["store"]}
                expansions = progress["expansions"]
            emitter.emit(
                JobStarted,
                resumed=progress is not None,
                preloaded_stages=len(preloads) + len(expansions or ()),
            )

            key_by_name = {
                scenario.name: scenario_keys[index]
                for index, (scenario, _keys) in enumerate(scenario_meta)
            }
            observer = _JobObserver(
                emitter,
                [(scenario.name, keys) for scenario, keys in scenario_meta],
                checkpoints=self.checkpoints,
                job_id=record.job_id,
                checkpoint_every=self.config.checkpoint_every,
                scenario_keys=key_by_name,
                cancel_token=token,
                lifecycle_chaos=self.lifecycle_chaos,
            )
            if self.num_workers >= 2:
                scheduler = PooledScheduler(
                    self.num_workers,
                    mp_context=self.mp_context,
                    retry_policy=self.config.retry,
                    chaos=self.chaos,
                    degrade=self.config.degrade_scenarios,
                )
            else:
                scheduler = SerialScheduler(
                    retry_policy=self.config.retry,
                    chaos=self.chaos,
                    degrade=self.config.degrade_scenarios,
                )
            try:
                run = scheduler.run(
                    nodes,
                    observer=observer,
                    preloaded=preloads,
                    expansions=expansions,
                    cancel_token=token,
                )
            finally:
                release_scenario_engines(scenario_keys)

            failures: dict[str, list[dict]] = {}
            for failure in run.failures:
                record_dict = canonical_failure(
                    failure, key_by_name.get(failure.scenario, "")
                )
                failures.setdefault(failure.scenario, []).append(record_dict)
            failures = {
                name: sort_failures(records)
                for name, records in sorted(failures.items())
            }
            results = {
                scenario.name: run.value(keys["report"])
                for scenario, keys in scenario_meta
                if scenario.name not in failures
            }
            campaign = CampaignResult(
                scenarios=results,
                failures=failures,
                num_workers=self.num_workers,
                seconds=time.perf_counter() - start,
            )
            report = campaign.report_bytes()
            for scenario, keys in scenario_meta:
                if scenario.name in failures:
                    continue
                self.prep_cache.harvest(scenario.circuit, scenario.config, run, keys)
            record.result = campaign
            record.report = report
            if self.checkpoints is not None:
                self.checkpoints.save_report(record.job_id, report)
                self.checkpoints.discard_progress(record.job_id)
                self.checkpoints.clear_lifecycle(record.job_id)
            emitter.emit(
                JobFinished,
                scenarios=tuple(sorted(results)),
                checksum=report_checksum(report),
                partial=bool(failures),
                failed_scenarios=tuple(sorted(failures)),
            )
        except ScheduleCancelled as stop:
            # Cooperative stop at a stage boundary: checkpoint whatever the
            # half-finished run merged so far, then record the terminal
            # state.  reason "shutdown" (stop(mode="cancel")) writes NO
            # terminal marker -- the job stays pending on disk and the next
            # start() resumes it; user cancels and deadline timeouts write
            # one, so a restart surfaces them instead of resuming.
            checkpointed = False
            if self.checkpoints is not None:
                if stop.run is not None:
                    self.checkpoints.save_progress(record.job_id, stop.run)
                    checkpointed = True
                if stop.reason != "shutdown":
                    self.checkpoints.mark_state(
                        record.job_id,
                        "timeout" if stop.reason == "timeout" else "cancelled",
                        stop.reason,
                    )
            emitter.emit(
                JobCancelled, reason=stop.reason, checkpointed=checkpointed
            )
        except BaseException as error:
            # With a checkpoint store the failure is resumable: the spec and
            # the last progress snapshot survive; a restarted service picks
            # the job up from CheckpointStore.pending_jobs().
            emitter.emit(
                JobFailed,
                error=str(error),
                interrupted=self.checkpoints is not None,
            )
