"""The asyncio campaign service: submit, stream, checkpoint, resume.

:class:`CampaignService` is the long-lived front-end over the stage-graph
schedulers.  Submissions (lists of
:class:`~repro.campaign.runner.CampaignScenario`) enter an asyncio queue;
one drain task executes jobs in submission order, each job building the
same multi-scenario DAG a :class:`~repro.campaign.runner.CampaignRunner`
would and draining it through a
:class:`~repro.campaign.scheduler.PooledScheduler` (or the serial walk).
The blocking schedule runs in a worker thread (``asyncio.to_thread``);
a :class:`~repro.campaign.scheduler.StageObserver` bridges its progress
back onto the event loop with ``call_soon_threadsafe``, so subscribers see
stage starts/finishes, coverage-curve deltas and section completions *live*
(:mod:`repro.service.events`).

Durability: with a checkpoint directory, every job persists its spec at
submission, a consistent merged-partials snapshot every
``checkpoint_every`` finished stages, and the final canonical report bytes
(:mod:`repro.service.checkpoint`).  A service killed mid-job restarts,
recovers the pending jobs from disk, preloads the checkpointed artifacts
and replayed expansions into a fresh schedule, and re-executes only the
unfinished stages -- the resumed report bytes are identical to an
uninterrupted run (``tests/service/test_checkpoint_resume.py``).

Scenario keys are **deterministic** here (``<job_id>/s<i>:<name>``), unlike
the invocation-unique keys of the one-shot runner: a resumed schedule must
address the same artifacts the crashed one checkpointed.
"""

from __future__ import annotations

import asyncio
import itertools
import re
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..campaign.pipeline import (
    RandomPhaseOutcome,
    TransitionOutcome,
    release_scenario_engines,
    scenario_stage_nodes,
)
from ..campaign.results import (
    FAILURES_KEY,
    CampaignResult,
    ScenarioResult,
    canonical_failure,
    sort_failures,
)
from ..campaign.runner import CampaignScenario
from ..campaign.scheduler import PooledScheduler, SerialScheduler, StageObserver
from ..core.config import ServiceConfig
from ..netlist.library import CellLibrary
from .cache import ScenarioPrepCache
from .checkpoint import CheckpointStore
from .events import (
    TERMINAL_EVENTS,
    CoverageDelta,
    JobAccepted,
    JobCounters,
    JobEvent,
    JobFailed,
    JobFinished,
    JobStarted,
    ScenarioCompleted,
    ScenarioFailed,
    SectionCompleted,
    StageFailed,
    StageFinished,
    StageRetrying,
    StageStarted,
    report_checksum,
)

_JOB_ID_PATTERN = re.compile(r"^job-(\d+)$")


@dataclass(frozen=True)
class JobSpec:
    """The durable submission record: everything needed to (re-)run a job."""

    job_id: str
    scenarios: tuple


class JobRecord:
    """In-memory state of one job: its spec, event log and final artifacts.

    Event ``seq`` numbers are allocated from the record (strictly
    increasing per job); events are appended only on the event loop thread,
    so readers on that thread never see partial updates.
    """

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.job_id = spec.job_id
        #: "queued" -> "running" -> "finished" | "partial" | "failed".
        #: "partial" is a *successful* terminal state in which one or more
        #: scenarios were degraded after exhausting their retries; the
        #: report carries their canonical failure records instead.
        self.state = "queued"
        self.events: list[JobEvent] = []
        self.counters = JobCounters()
        self.result: Optional[CampaignResult] = None
        self.report: Optional[bytes] = None
        self.error: Optional[str] = None
        self.resumed = False
        self.preloaded_stages = 0
        self._seq = itertools.count()
        self._new_event = asyncio.Event()

    def next_seq(self) -> int:
        return next(self._seq)

    @property
    def done(self) -> bool:
        return self.state in ("finished", "partial", "failed")


class _JobEmitter:
    """Constructs sequenced events in the worker thread and hands them off.

    ``sink`` must be thread-safe (the service passes a
    ``call_soon_threadsafe`` bridge); one emitter serves one job execution,
    and jobs execute one at a time, so seq allocation needs no locking.
    """

    def __init__(self, job_id: str, next_seq, sink, chunk: int) -> None:
        self.job_id = job_id
        self._next_seq = next_seq
        self._sink = sink
        self.chunk = chunk

    def emit(self, event_type, **fields) -> JobEvent:
        event = event_type(job_id=self.job_id, seq=self._next_seq(), **fields)
        self._sink(event)
        return event

    def emit_curve(self, scenario: str, section: str, curve) -> None:
        """Stream one coverage curve as consecutive chunked deltas."""
        points = [tuple(point) for point in curve]
        for start in range(0, len(points), self.chunk):
            chunk = tuple(points[start : start + self.chunk])
            self.emit(
                CoverageDelta,
                scenario=scenario,
                section=section,
                start_index=start,
                points=chunk,
                coverage=chunk[-1][1],
            )


class _JobObserver(StageObserver):
    """Bridges one schedule's progress into events and checkpoints.

    Content events are dispatched on artifact *type* as stages land
    (:class:`~repro.campaign.pipeline.RandomPhaseOutcome` -> ``random``
    curve deltas, :class:`~repro.campaign.pipeline.TransitionOutcome` ->
    ``transition`` deltas, :class:`~repro.campaign.results.ScenarioResult`
    -> section completions + scenario checksum).  On a resumed schedule the
    preloaded artifacts never re-execute, so :meth:`on_run_begin` replays
    their content events from the restored store -- a fresh subscriber's
    stream still reassembles into the *full* canonical report.
    """

    def __init__(
        self,
        emitter: _JobEmitter,
        scenario_artifacts,
        checkpoints: Optional[CheckpointStore],
        job_id: str,
        checkpoint_every: int,
        scenario_keys: Optional[dict] = None,
    ) -> None:
        self._emitter = emitter
        #: ``(scenario name, artifact-key mapping)`` per scenario, in
        #: submission order -- the replay walk on resume.
        self._scenario_artifacts = list(scenario_artifacts)
        self._checkpoints = checkpoints
        self._job_id = job_id
        self._checkpoint_every = checkpoint_every
        #: scenario name -> scenario graph key, for canonical failure
        #: records (the scenario prefix is stripped from failing stages).
        self._scenario_keys = dict(scenario_keys or {})
        self._since_save = 0
        self._run = None

    # -- schedule callbacks -------------------------------------------- #
    def on_run_begin(self, run) -> None:
        self._run = run
        for name, keys in self._scenario_artifacts:
            for logical in ("fault_sim", "transition", "report"):
                key = keys.get(logical)
                if key is None:
                    continue
                resolved = run.resolve_key(key)
                if resolved in run.store:
                    self._emit_content(name, run.store[resolved])

    def on_stage_start(self, node) -> None:
        self._emitter.emit(
            StageStarted, stage=node.key, phase=node.phase, scenario=node.scenario
        )

    def on_stage_finish(self, node, value, seconds: float) -> None:
        self._emitter.emit(
            StageFinished,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            seconds=seconds,
        )
        self._emit_content(node.scenario, value)
        if self._checkpoints is not None:
            self._since_save += 1
            if self._since_save >= self._checkpoint_every:
                self._checkpoints.save_progress(self._job_id, self._run)
                self._since_save = 0

    def on_stage_error(self, node, error: BaseException) -> None:
        self._emitter.emit(
            StageFailed,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            error=str(error),
        )

    def on_stage_retry(self, node, error, attempt: int, delay_s: float) -> None:
        self._emitter.emit(
            StageRetrying,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            attempt=attempt,
            delay_s=delay_s,
            error=str(error),
        )

    def on_stage_failed(self, node, error, failure) -> None:
        """A stage exhausted its retries and its scenario was degraded."""
        self._emitter.emit(
            StageFailed,
            stage=node.key,
            phase=node.phase,
            scenario=node.scenario,
            error=str(error),
        )
        scenario_key = self._scenario_keys.get(node.scenario, "")
        self._emitter.emit(
            ScenarioFailed,
            scenario=node.scenario,
            failure=canonical_failure(failure, scenario_key),
        )

    # -- content dispatch ---------------------------------------------- #
    def _emit_content(self, scenario: str, value) -> None:
        if isinstance(value, RandomPhaseOutcome):
            self._emitter.emit_curve(scenario, "random", value.result.coverage_curve)
        elif isinstance(value, TransitionOutcome):
            self._emitter.emit_curve(scenario, "transition", value.coverage_curve)
        elif isinstance(value, ScenarioResult):
            for section, payload in value.canonical_sections().items():
                self._emitter.emit(
                    SectionCompleted,
                    scenario=scenario,
                    section=section,
                    payload=payload,
                )
            self._emitter.emit(
                ScenarioCompleted,
                scenario=scenario,
                checksum=report_checksum(value.report_bytes()),
            )


class CampaignService:
    """Long-lived asyncio front-end over the campaign stage graph.

    Parameters mirror :class:`~repro.campaign.runner.CampaignRunner`
    (worker count, shard geometry, mp context) plus the service tier:
    ``checkpoint_dir`` enables durability/resume, ``service_config``
    (:class:`~repro.core.config.ServiceConfig`) tunes checkpoint cadence,
    event chunking and cache sizes.  Use as::

        service = CampaignService(checkpoint_dir=path)
        await service.start()
        job_id = await service.submit([CampaignScenario(...), ...])
        async for event in service.stream(job_id):
            ...
        record = await service.wait(job_id)
        await service.stop()
    """

    def __init__(
        self,
        num_workers: int = 1,
        fault_shards: Optional[int] = None,
        pattern_shards: int = 1,
        checkpoint_dir=None,
        service_config: Optional[ServiceConfig] = None,
        mp_context=None,
        chaos=None,
    ) -> None:
        self.num_workers = num_workers
        #: Optional :class:`~repro.campaign.chaos.ChaosPlan` threaded into
        #: every job's scheduler (testing/fault-drill hook; None in prod).
        self.chaos = chaos
        self.fault_shards = (
            fault_shards if fault_shards is not None else max(1, num_workers)
        )
        self.pattern_shards = pattern_shards
        self.mp_context = mp_context
        self.config = service_config or ServiceConfig()
        self.library = CellLibrary()
        self.checkpoints = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.prep_cache = ScenarioPrepCache(self.config.kernel_cache_size)
        self._jobs: dict[str, JobRecord] = {}
        self._totals = JobCounters()
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._job_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> list[str]:
        """Start draining; recover and re-enqueue checkpointed pending jobs.

        Returns the recovered job ids (oldest first).  Recovered jobs run
        before anything submitted afterwards and resume from their last
        progress snapshot.
        """
        if self._drain_task is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        recovered: list[str] = []
        if self.checkpoints is not None:
            highest = 0
            for job_id in self.checkpoints.job_ids():
                match = _JOB_ID_PATTERN.match(job_id)
                if match:
                    highest = max(highest, int(match.group(1)))
            self._job_counter = itertools.count(highest + 1)
            for job_id in self.checkpoints.pending_jobs():
                spec = self.checkpoints.load_spec(job_id)
                if spec is None:
                    continue
                record = JobRecord(spec)
                record.resumed = True
                self._jobs[job_id] = record
                self._record_event(
                    record,
                    JobAccepted(
                        job_id=job_id,
                        seq=record.next_seq(),
                        position=self._queue.qsize(),
                    ),
                )
                self._queue.put_nowait(record)
                recovered.append(job_id)
        self._drain_task = asyncio.create_task(self._drain())
        return recovered

    async def stop(self) -> None:
        """Drain the queue to completion, then stop (idempotent)."""
        if self._drain_task is None:
            return
        assert self._queue is not None
        self._queue.put_nowait(None)
        await self._drain_task
        self._drain_task = None

    # ------------------------------------------------------------------ #
    # Submission / observation
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        scenarios: Iterable[CampaignScenario],
        job_id: Optional[str] = None,
    ) -> str:
        """Queue a campaign; returns its job id immediately."""
        if self._queue is None:
            raise RuntimeError("service not started; await service.start() first")
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValueError("a job needs at least one scenario")
        names = [scenario.name for scenario in scenarios]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate scenario names {duplicates!r}: results are keyed "
                "by name, so every scenario needs a distinct one"
            )
        if FAILURES_KEY in names:
            raise ValueError(
                f"scenario name {FAILURES_KEY!r} is reserved for the "
                "report's degraded-scenario section"
            )
        depth = self.config.max_queue_depth
        if depth and self._queue.qsize() >= depth:
            raise RuntimeError(f"job queue is full (max_queue_depth={depth})")
        if job_id is None:
            job_id = f"job-{next(self._job_counter):06d}"
        if job_id in self._jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        spec = JobSpec(job_id=job_id, scenarios=scenarios)
        record = JobRecord(spec)
        self._jobs[job_id] = record
        if self.checkpoints is not None:
            self.checkpoints.save_spec(job_id, spec)
        self._record_event(
            record,
            JobAccepted(
                job_id=job_id, seq=record.next_seq(), position=self._queue.qsize()
            ),
        )
        self._queue.put_nowait(record)
        return job_id

    def job(self, job_id: str) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    async def stream(self, job_id: str):
        """Async-iterate a job's events: full history, then live to the end.

        Yields every recorded event from ``seq`` 0 (late subscribers replay
        the log first) and terminates after the job's terminal event.
        """
        record = self.job(job_id)
        index = 0
        while True:
            record._new_event.clear()
            if index < len(record.events):
                event = record.events[index]
                index += 1
                yield event
                if isinstance(event, TERMINAL_EVENTS):
                    return
                continue
            await record._new_event.wait()

    async def wait(self, job_id: str) -> JobRecord:
        """Block until the job reaches a terminal state; returns its record."""
        record = self.job(job_id)
        while True:
            record._new_event.clear()
            if record.done:
                return record
            await record._new_event.wait()

    def report_bytes(self, job_id: str) -> Optional[bytes]:
        """The finished job's canonical report bytes (memory, then disk)."""
        record = self._jobs.get(job_id)
        if record is not None and record.report is not None:
            return record.report
        if self.checkpoints is not None:
            return self.checkpoints.load_report(job_id)
        return None

    def status(self) -> dict:
        """Service-level observability snapshot (the "status endpoint").

        Counters and cache statistics are monotone; ``engine_cache`` reports
        the parent process's shard-engine LRU (pool workers hold their own).
        """
        from ..campaign.runner import _ENGINE_CACHE

        return {
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "jobs": {
                job_id: record.state for job_id, record in sorted(self._jobs.items())
            },
            "counters": self._totals.as_dict(),
            "prep_cache": {
                **self.prep_cache.stats.as_dict(),
                "entries": len(self.prep_cache),
            },
            "engine_cache": {
                **_ENGINE_CACHE.stats.as_dict(),
                "entries": len(_ENGINE_CACHE),
            },
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    async def _drain(self) -> None:
        assert self._queue is not None
        while True:
            record = await self._queue.get()
            try:
                if record is None:
                    return
                await asyncio.to_thread(self._execute_job, record)
            finally:
                self._queue.task_done()
                self._prune_records()

    def _record_event(self, record: JobRecord, event: JobEvent) -> None:
        """Append one event (event-loop thread only) and wake subscribers."""
        record.events.append(event)
        record.counters.observe(event)
        self._totals.observe(event)
        if isinstance(event, JobStarted):
            record.state = "running"
            record.resumed = event.resumed
            record.preloaded_stages = event.preloaded_stages
        elif isinstance(event, JobFinished):
            record.state = "partial" if event.partial else "finished"
        elif isinstance(event, JobFailed):
            record.state = "failed"
            record.error = event.error
        record._new_event.set()

    def _prune_records(self) -> None:
        """Forget the oldest terminal jobs beyond ``retain_jobs``.

        Only in-memory records are pruned; checkpointed reports stay on
        disk and remain readable through :meth:`report_bytes`.
        """
        done = [job_id for job_id, record in self._jobs.items() if record.done]
        excess = len(done) - self.config.retain_jobs
        for job_id in done[:max(0, excess)]:
            del self._jobs[job_id]

    def _execute_job(self, record: JobRecord) -> None:
        """Run one job to completion (worker thread; blocking)."""
        assert self._loop is not None
        loop = self._loop

        def sink(event: JobEvent) -> None:
            loop.call_soon_threadsafe(self._record_event, record, event)

        emitter = _JobEmitter(
            record.job_id, record.next_seq, sink, self.config.event_chunk
        )
        start = time.perf_counter()
        scenario_keys: list[str] = []
        try:
            nodes = []
            scenario_meta = []
            preloads: dict[str, object] = {}
            for index, scenario in enumerate(record.spec.scenarios):
                key = f"{record.job_id}/s{index}:{scenario.name}"
                scenario_keys.append(key)
                scenario_nodes, artifact_keys = scenario_stage_nodes(
                    key,
                    scenario.circuit,
                    scenario.config,
                    library=self.library,
                    scenario_name=scenario.name,
                    fault_shards=self.fault_shards,
                    pattern_shards=self.pattern_shards,
                    num_workers=self.num_workers,
                    include_topup=scenario.config.campaign_topup,
                    include_report=True,
                )
                nodes.extend(scenario_nodes)
                scenario_meta.append((scenario, artifact_keys))
                preloads.update(
                    self.prep_cache.preloads(
                        scenario.circuit, scenario.config, artifact_keys
                    )
                )

            progress = (
                self.checkpoints.load_progress(record.job_id)
                if self.checkpoints is not None
                else None
            )
            expansions = None
            if progress is not None:
                # Checkpointed values win over cache preloads: the restored
                # store is one identity-consistent snapshot.
                preloads = {**preloads, **progress["store"]}
                expansions = progress["expansions"]
            emitter.emit(
                JobStarted,
                resumed=progress is not None,
                preloaded_stages=len(preloads) + len(expansions or ()),
            )

            key_by_name = {
                scenario.name: scenario_keys[index]
                for index, (scenario, _keys) in enumerate(scenario_meta)
            }
            observer = _JobObserver(
                emitter,
                [(scenario.name, keys) for scenario, keys in scenario_meta],
                checkpoints=self.checkpoints,
                job_id=record.job_id,
                checkpoint_every=self.config.checkpoint_every,
                scenario_keys=key_by_name,
            )
            if self.num_workers >= 2:
                scheduler = PooledScheduler(
                    self.num_workers,
                    mp_context=self.mp_context,
                    retry_policy=self.config.retry,
                    chaos=self.chaos,
                    degrade=self.config.degrade_scenarios,
                )
            else:
                scheduler = SerialScheduler(
                    retry_policy=self.config.retry,
                    chaos=self.chaos,
                    degrade=self.config.degrade_scenarios,
                )
            try:
                run = scheduler.run(
                    nodes,
                    observer=observer,
                    preloaded=preloads,
                    expansions=expansions,
                )
            finally:
                release_scenario_engines(scenario_keys)

            failures: dict[str, list[dict]] = {}
            for failure in run.failures:
                record_dict = canonical_failure(
                    failure, key_by_name.get(failure.scenario, "")
                )
                failures.setdefault(failure.scenario, []).append(record_dict)
            failures = {
                name: sort_failures(records)
                for name, records in sorted(failures.items())
            }
            results = {
                scenario.name: run.value(keys["report"])
                for scenario, keys in scenario_meta
                if scenario.name not in failures
            }
            campaign = CampaignResult(
                scenarios=results,
                failures=failures,
                num_workers=self.num_workers,
                seconds=time.perf_counter() - start,
            )
            report = campaign.report_bytes()
            for scenario, keys in scenario_meta:
                if scenario.name in failures:
                    continue
                self.prep_cache.harvest(scenario.circuit, scenario.config, run, keys)
            record.result = campaign
            record.report = report
            if self.checkpoints is not None:
                self.checkpoints.save_report(record.job_id, report)
                self.checkpoints.discard_progress(record.job_id)
            emitter.emit(
                JobFinished,
                scenarios=tuple(sorted(results)),
                checksum=report_checksum(report),
                partial=bool(failures),
                failed_scenarios=tuple(sorted(failures)),
            )
        except BaseException as error:
            # With a checkpoint store the failure is resumable: the spec and
            # the last progress snapshot survive; a restarted service picks
            # the job up from CheckpointStore.pending_jobs().
            emitter.emit(
                JobFailed,
                error=str(error),
                interrupted=self.checkpoints is not None,
            )
