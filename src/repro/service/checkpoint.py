"""Durable per-job checkpoints: specs, merged partials, final reports.

Layout (everything under one root directory, one subdirectory per job)::

    <root>/<job_id>/spec.pkl      -- the pickled JobSpec (what was submitted)
    <root>/<job_id>/progress.pkl  -- canonical merged partials (resume point)
    <root>/<job_id>/report.json   -- final canonical report bytes
    <root>/<job_id>/state.json    -- lifecycle record (terminal state,
                                     resume-attempt counter, started flag)

``progress.pkl`` is **one** pickle dump of the run's ``{"store": ...,
"expansions": ...}``.  The single dump matters: stage artifacts share
mutated objects in-process (after the detection merge, the bundle's fault
list *is* the result's fault list), and pickle's memo preserves exactly
those identities across the dump/load boundary.  Snapshotting artifacts
individually would silently fork shared objects and change resumed report
bytes.  Expansions are persisted alongside the store so resume *replays*
recorded fan-outs (with the exact task objects the original run built,
per-run copies included) instead of re-running expanders against
post-mutation state.

All writes are atomic (temp file + ``os.replace`` in the same directory), so
a crash mid-write -- the whole point of a checkpoint store -- leaves the
previous consistent snapshot in place.  :class:`CheckpointStore` is the
seam the crash-injection suite subclasses to inject failures at exact
checkpoint boundaries.

``state.json`` is the durable job-*lifecycle* record (PR 10).  It carries
three facts recovery needs that the other artifacts cannot express: the
terminal state of a cancelled/timed-out/quarantined job (so a restart does
not blindly resume a job the user stopped on purpose), the resume-attempt
counter behind crash-loop quarantine, and a ``started`` flag distinguishing
a job that actually began executing (and may have crashed the process) from
one that merely waited in the queue behind it -- only started jobs burn
resume attempts.  It is plain JSON, not pickle: human-inspectable during
incident response, and a corrupt record degrades to "no lifecycle info"
(the job resumes normally) rather than poisoning recovery.

Pickled artifacts (spec, progress) are framed with a SHA-256 checksum so a
corrupt or truncated blob -- a torn disk write, bit rot, a partial copy --
is *detected* on load instead of crashing recovery deep inside the
unpickler.  A bad snapshot reads as ``None`` (logged): a bad progress
snapshot re-runs the job from its spec; a bad spec skips that job at
recovery.  Unframed legacy blobs still load.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Optional

logger = logging.getLogger(__name__)

SPEC_FILE = "spec.pkl"
PROGRESS_FILE = "progress.pkl"
REPORT_FILE = "report.json"
STATE_FILE = "state.json"

#: Frame layout: magic + 64 hex chars of sha256(payload) + newline + payload.
CHECKSUM_MAGIC = b"repro-ckpt-v1\n"
_DIGEST_LEN = 64


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _frame(payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return CHECKSUM_MAGIC + digest + b"\n" + payload


def _unframe(blob: bytes, path: Path) -> Optional[bytes]:
    """Verify and strip the checksum frame; ``None`` if corrupt/truncated."""
    if not blob.startswith(CHECKSUM_MAGIC):
        # Legacy unframed pickle: no integrity check available, let the
        # (guarded) unpickler judge it.
        return blob
    header_end = len(CHECKSUM_MAGIC) + _DIGEST_LEN
    if len(blob) <= header_end or blob[header_end : header_end + 1] != b"\n":
        logger.warning(
            "checkpoint %s: truncated checksum header; ignoring snapshot", path
        )
        return None
    digest = blob[len(CHECKSUM_MAGIC) : header_end]
    payload = blob[header_end + 1 :]
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        logger.warning(
            "checkpoint %s: checksum mismatch (corrupt or truncated); "
            "ignoring snapshot",
            path,
        )
        return None
    return payload


def _load_pickle(path: Path):
    """Load a checksum-framed pickle; corruption reads as ``None``, logged."""
    if not path.exists():
        return None
    payload = _unframe(path.read_bytes(), path)
    if payload is None:
        return None
    try:
        return pickle.loads(payload)
    except Exception as error:
        logger.warning(
            "checkpoint %s: unreadable snapshot (%s: %s); ignoring it",
            path,
            type(error).__name__,
            error,
        )
        return None


class CheckpointStore:
    """Filesystem-backed durability for :class:`~repro.service.CampaignService`.

    Methods only ever raise for genuine I/O or unpickling errors; a missing
    artifact reads as ``None`` (jobs legitimately have no progress yet, and
    recovery probes for reports that may not exist).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------- #
    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def _path(self, job_id: str, name: str) -> Path:
        return self.job_dir(job_id) / name

    # -- specs --------------------------------------------------------- #
    def save_spec(self, job_id: str, spec) -> None:
        """Persist the submission itself, so a restart can re-run it."""
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        _atomic_write(self._path(job_id, SPEC_FILE), _frame(pickle.dumps(spec)))

    def load_spec(self, job_id: str):
        """The submitted spec, or ``None`` if absent or unreadable (logged)."""
        return _load_pickle(self._path(job_id, SPEC_FILE))

    # -- progress ------------------------------------------------------ #
    def save_progress(self, job_id: str, run) -> None:
        """Snapshot a consistent resume point of a (running) pipeline.

        ``run`` is the live :class:`~repro.campaign.scheduler.PipelineRun`;
        callers invoke this from
        :meth:`~repro.campaign.scheduler.StageObserver.on_stage_finish`,
        where the store/expansions are guaranteed consistent.
        """
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        snapshot = {"store": run.store, "expansions": run.expansions}
        _atomic_write(
            self._path(job_id, PROGRESS_FILE), _frame(pickle.dumps(snapshot))
        )

    def load_progress(self, job_id: str) -> Optional[dict]:
        """The last snapshot as ``{"store": ..., "expansions": ...}``.

        A corrupt or truncated snapshot reads as ``None`` -- the job
        re-runs from its spec instead of crashing recovery.
        """
        snapshot = _load_pickle(self._path(job_id, PROGRESS_FILE))
        if snapshot is not None and not (
            isinstance(snapshot, dict) and "store" in snapshot
        ):
            logger.warning(
                "checkpoint %s: unexpected snapshot shape; ignoring it",
                self._path(job_id, PROGRESS_FILE),
            )
            return None
        return snapshot

    def has_progress(self, job_id: str) -> bool:
        """Whether a resume point exists on disk (no unpickling; existence
        only -- a corrupt snapshot still reads as ``None`` on load)."""
        return self._path(job_id, PROGRESS_FILE).exists()

    def discard_progress(self, job_id: str) -> None:
        """Drop the resume point (the job finished; the report is durable)."""
        path = self._path(job_id, PROGRESS_FILE)
        if path.exists():
            path.unlink()

    # -- reports ------------------------------------------------------- #
    def save_report(self, job_id: str, report: bytes) -> None:
        """Persist the final canonical report bytes (marks the job done)."""
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        _atomic_write(self._path(job_id, REPORT_FILE), report)

    def load_report(self, job_id: str) -> Optional[bytes]:
        path = self._path(job_id, REPORT_FILE)
        if not path.exists():
            return None
        return path.read_bytes()

    # -- lifecycle ----------------------------------------------------- #
    def load_lifecycle(self, job_id: str) -> dict:
        """The job's durable lifecycle record; ``{}`` if absent/corrupt.

        Keys (all optional): ``state`` (a terminal state a restart must
        honour -- ``"cancelled"``, ``"timeout"``, ``"quarantined"``),
        ``reason``, ``resume_attempts`` (int), ``started`` (bool).
        """
        path = self._path(job_id, STATE_FILE)
        if not path.exists():
            return {}
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            logger.warning(
                "checkpoint %s: unreadable lifecycle record (%s: %s); "
                "treating the job as having no lifecycle history",
                path,
                type(error).__name__,
                error,
            )
            return {}
        if not isinstance(record, dict):
            logger.warning(
                "checkpoint %s: unexpected lifecycle shape; ignoring it", path
            )
            return {}
        return record

    def save_lifecycle(self, job_id: str, **fields) -> dict:
        """Merge ``fields`` into the lifecycle record and persist it."""
        record = self.load_lifecycle(job_id)
        record.update(fields)
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self._path(job_id, STATE_FILE),
            json.dumps(record, sort_keys=True).encode("utf-8"),
        )
        return record

    def mark_started(self, job_id: str) -> None:
        """Record that the job began executing (it now burns resume
        attempts if the process dies before it finishes)."""
        self.save_lifecycle(job_id, started=True)

    def mark_state(self, job_id: str, state: str, reason: str = "") -> None:
        """Persist a terminal lifecycle state a restart must honour."""
        self.save_lifecycle(job_id, state=state, reason=reason)

    def bump_resume_attempts(self, job_id: str) -> int:
        """Count one recovery of a previously-*started* job; returns the
        new total.  Clears ``started`` -- the attempt is only re-armed when
        the resumed job actually begins executing again."""
        attempts = int(self.load_lifecycle(job_id).get("resume_attempts", 0)) + 1
        self.save_lifecycle(job_id, resume_attempts=attempts, started=False)
        return attempts

    def clear_lifecycle(self, job_id: str) -> None:
        """Drop the lifecycle record (job finished, or an operator
        explicitly resubmitted it with a fresh history)."""
        path = self._path(job_id, STATE_FILE)
        if path.exists():
            path.unlink()

    # -- recovery ------------------------------------------------------ #
    def job_ids(self) -> list[str]:
        """Every job directory, sorted (ids sort chronologically by design)."""
        if not self.root.exists():
            return []
        return sorted(
            entry.name for entry in self.root.iterdir() if entry.is_dir()
        )

    def pending_jobs(self) -> list[str]:
        """Jobs with a spec but no final report: what a restart must resume."""
        return [
            job_id
            for job_id in self.job_ids()
            if self._path(job_id, SPEC_FILE).exists()
            and not self._path(job_id, REPORT_FILE).exists()
        ]

    def discard(self, job_id: str) -> None:
        """Remove every artifact of ``job_id`` (report included)."""
        directory = self.job_dir(job_id)
        if not directory.exists():
            return
        for entry in directory.iterdir():
            entry.unlink()
        directory.rmdir()
