"""The service's incremental event stream and its canonical reassembly.

A running job publishes a totally ordered (per-job ``seq``) stream of frozen
event records: lifecycle events (:class:`JobAccepted` ... :class:`JobFinished`),
per-stage progress (:class:`StageStarted` / :class:`StageFinished` /
:class:`StageFailed`), and -- the part that makes the stream more than a
progress bar -- the *content* events :class:`CoverageDelta` and
:class:`SectionCompleted`.  Content events carry canonical report fragments
(:meth:`~repro.campaign.results.ScenarioResult.canonical_sections` payloads
and chunked coverage-curve points), so a subscriber that saw every content
event can rebuild the job's canonical report bytes without ever touching the
service again: :class:`EventReassembler` does exactly that, and
``tests/service/test_stream_properties.py`` proves the rebuild is invariant
under arbitrary event interleavings and chunk boundaries.

Events are plain frozen dataclasses (pickleable, hashable-by-field) rather
than serialised wire messages: transports can attach whatever encoding they
like later, while in-process subscribers (and the test suite) consume them
directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..campaign.results import (
    CURVE_NAMES,
    FAILURES_KEY,
    SECTION_NAMES,
    assemble_scenario_canonical,
    canonical_report_bytes,
    sort_failures,
)


def report_checksum(report: bytes) -> str:
    """Hex digest identifying a canonical report (cheap byte-identity probe)."""
    return hashlib.sha256(report).hexdigest()


# --------------------------------------------------------------------- #
# Event records
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class JobEvent:
    """Base record: every event names its job and its per-job sequence slot.

    ``seq`` increases strictly (by one) within a job's stream; subscribers
    detect gaps/reordering with it, and the property suite asserts the
    service never violates it.
    """

    job_id: str
    seq: int


@dataclass(frozen=True)
class JobAccepted(JobEvent):
    """The submission was validated and queued at ``position``."""

    position: int = 0


@dataclass(frozen=True)
class JobStarted(JobEvent):
    """The job left the queue and its stage graph is about to execute.

    ``resumed`` jobs were recovered from a checkpoint: ``preloaded_stages``
    of their stage graph (artifacts + replayed expansions) were satisfied
    from disk and will not execute again.
    """

    resumed: bool = False
    preloaded_stages: int = 0


@dataclass(frozen=True)
class StageStarted(JobEvent):
    """A stage node began executing (or was submitted to the pool)."""

    stage: str = ""
    phase: str = ""
    scenario: str = ""


@dataclass(frozen=True)
class StageFinished(JobEvent):
    """A stage node finished and its artifact is merged into the run."""

    stage: str = ""
    phase: str = ""
    scenario: str = ""
    seconds: float = 0.0


@dataclass(frozen=True)
class StageFailed(JobEvent):
    """A stage node raised; the job is about to abort with this error."""

    stage: str = ""
    phase: str = ""
    scenario: str = ""
    error: str = ""


@dataclass(frozen=True)
class StageRetrying(JobEvent):
    """A stage attempt failed retryably; the stage will run again.

    ``attempt`` is the 1-based index of the attempt that failed; the retry
    dispatches after ``delay_s`` of deterministic backoff.
    """

    stage: str = ""
    phase: str = ""
    scenario: str = ""
    attempt: int = 0
    delay_s: float = 0.0
    error: str = ""


@dataclass(frozen=True)
class ScenarioFailed(JobEvent):
    """A scenario was quarantined: one of its stages exhausted its retries.

    Sibling scenarios keep running; the job will finish ``"partial"``.
    ``failure`` is the canonical failure record
    (:func:`~repro.campaign.results.canonical_failure`) that will appear --
    byte-identically -- in the partial report's ``failures`` section, so
    the stream alone suffices to reassemble it.
    """

    scenario: str = ""
    failure: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CoverageDelta(JobEvent):
    """A chunk of one scenario's coverage curve, streamed as it merges.

    ``points`` are consecutive canonical curve points ``(pattern_index,
    coverage)`` starting at curve position ``start_index`` of the ``section``
    curve (:data:`~repro.campaign.results.CURVE_NAMES`); ``coverage`` is the
    running coverage after this chunk (the last point's value), monotone
    non-decreasing along each section's stream.
    """

    scenario: str = ""
    section: str = "random"
    start_index: int = 0
    points: tuple = ()
    coverage: float = 0.0


@dataclass(frozen=True)
class SectionCompleted(JobEvent):
    """One curve-free canonical report section of a scenario is final.

    ``payload`` is the exact
    :meth:`~repro.campaign.results.ScenarioResult.canonical_sections` entry
    for ``section`` (:data:`~repro.campaign.results.SECTION_NAMES`).
    """

    scenario: str = ""
    section: str = "base"
    payload: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioCompleted(JobEvent):
    """Every section and curve of ``scenario`` has been streamed."""

    scenario: str = ""
    checksum: str = ""


@dataclass(frozen=True)
class JobFinished(JobEvent):
    """The job's canonical report is final (and checkpointed when enabled).

    ``partial`` marks a degraded run: ``failed_scenarios`` were quarantined
    (each previously announced by a :class:`ScenarioFailed` event) and the
    report carries a canonical ``failures`` section; ``scenarios`` lists
    only the completed ones.
    """

    scenarios: tuple = ()
    checksum: str = ""
    partial: bool = False
    failed_scenarios: tuple = ()


@dataclass(frozen=True)
class JobFailed(JobEvent):
    """The job aborted; ``error`` is the stringified cause.

    An ``interrupted`` failure left a resumable checkpoint behind (the
    crash-injection suite resumes exactly these).
    """

    error: str = ""
    interrupted: bool = False


@dataclass(frozen=True)
class JobCancelled(JobEvent):
    """The job was cooperatively stopped at a stage boundary.

    ``reason`` distinguishes the three stop paths sharing this event:
    ``"cancelled"`` (explicit :meth:`~repro.service.CampaignService.cancel`),
    ``"timeout"`` (the job-level deadline fired; the record lands in the
    ``"timeout"`` terminal state), and ``"shutdown"``
    (``stop(mode="cancel")`` -- the job stays *pending* on disk and a
    restart resumes it).  ``checkpointed`` says whether a resume point was
    persisted at the stop, so a resubmission continues instead of
    restarting.
    """

    reason: str = "cancelled"
    checkpointed: bool = False


@dataclass(frozen=True)
class JobQuarantined(JobEvent):
    """The job exceeded its crash-loop budget and will not be resumed.

    Emitted at recovery when a previously-started job has been resumed
    ``resume_attempts`` times against a ``limit`` of
    :attr:`~repro.core.config.ServiceConfig.max_resume_attempts`.  Spec and
    partial progress stay on disk for inspection; an operator can clear the
    record with an explicit resume.
    """

    resume_attempts: int = 0
    limit: int = 0


TERMINAL_EVENTS = (JobFinished, JobFailed, JobCancelled, JobQuarantined)


# --------------------------------------------------------------------- #
# Counters
# --------------------------------------------------------------------- #
@dataclass
class JobCounters:
    """Monotone progress counters, observable while the job runs.

    Mirrors the LiteX BIST generator/checker shape: start/done/error tallies
    a poller can watch without subscribing to the full stream.  Every field
    only ever increases (asserted by the stream property suite).
    """

    stages_started: int = 0
    stages_finished: int = 0
    stages_failed: int = 0
    stages_retried: int = 0
    scenarios_completed: int = 0
    scenarios_failed: int = 0
    events: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "stages_started": self.stages_started,
            "stages_finished": self.stages_finished,
            "stages_failed": self.stages_failed,
            "stages_retried": self.stages_retried,
            "scenarios_completed": self.scenarios_completed,
            "scenarios_failed": self.scenarios_failed,
            "events": self.events,
        }

    def observe(self, event: JobEvent) -> None:
        self.events += 1
        if isinstance(event, StageStarted):
            self.stages_started += 1
        elif isinstance(event, StageFinished):
            self.stages_finished += 1
        elif isinstance(event, StageFailed):
            self.stages_failed += 1
        elif isinstance(event, StageRetrying):
            self.stages_retried += 1
        elif isinstance(event, ScenarioCompleted):
            self.scenarios_completed += 1
        elif isinstance(event, ScenarioFailed):
            self.scenarios_failed += 1


# --------------------------------------------------------------------- #
# Reassembly
# --------------------------------------------------------------------- #
class EventReassembler:
    """Rebuild canonical report bytes from a job's content events.

    Feed events in *any* order (the stream is totally ordered, but a
    subscriber may buffer, shard or replay it): curve chunks carry their
    ``start_index`` and sections are keyed, so assembly is
    interleaving-invariant.  After every :class:`ScenarioCompleted` scenario
    has been fed, :meth:`report_bytes` equals the
    :meth:`~repro.campaign.results.CampaignResult.report_bytes` of the
    uninterrupted in-process run, byte for byte.
    """

    def __init__(self) -> None:
        self._sections: dict[str, dict[str, dict]] = {}
        self._chunks: dict[str, dict[str, dict[int, Sequence]]] = {}
        self._completed: dict[str, str] = {}
        self._failures: dict[str, list[dict]] = {}

    # -- feeding ------------------------------------------------------- #
    def feed(self, event: JobEvent) -> None:
        """Absorb one event (non-content events are ignored)."""
        if isinstance(event, ScenarioFailed):
            records = self._failures.setdefault(event.scenario, [])
            if event.failure not in records:  # replay/duplication tolerant
                records.append(dict(event.failure))
        elif isinstance(event, CoverageDelta):
            if event.section not in CURVE_NAMES:
                raise ValueError(f"unknown curve section {event.section!r}")
            curves = self._chunks.setdefault(event.scenario, {})
            chunks = curves.setdefault(event.section, {})
            existing = chunks.get(event.start_index)
            if existing is not None and tuple(existing) != tuple(event.points):
                raise ValueError(
                    f"conflicting curve chunk at {event.scenario!r}/"
                    f"{event.section!r}[{event.start_index}]"
                )
            chunks[event.start_index] = event.points
        elif isinstance(event, SectionCompleted):
            if event.section not in SECTION_NAMES:
                raise ValueError(f"unknown report section {event.section!r}")
            self._sections.setdefault(event.scenario, {})[event.section] = (
                event.payload
            )
        elif isinstance(event, ScenarioCompleted):
            self._completed[event.scenario] = event.checksum

    def feed_all(self, events) -> "EventReassembler":
        for event in events:
            self.feed(event)
        return self

    # -- assembly ------------------------------------------------------ #
    def curve(self, scenario: str, section: str) -> list[list]:
        """The reassembled ``section`` curve of ``scenario``, index-ordered."""
        chunks = self._chunks.get(scenario, {}).get(section, {})
        points: list[list] = []
        for start_index in sorted(chunks):
            if start_index != len(points):
                raise ValueError(
                    f"curve {scenario!r}/{section!r} is missing points before "
                    f"index {start_index} (have {len(points)})"
                )
            points.extend(list(point) for point in chunks[start_index])
        return points

    def scenario_canonical(self, scenario: str) -> dict:
        """The reassembled canonical dict of one scenario."""
        sections = self._sections.get(scenario)
        if not sections:
            raise KeyError(f"no sections streamed for scenario {scenario!r}")
        curves = {
            section: self.curve(scenario, section)
            for section in self._chunks.get(scenario, {})
        }
        return assemble_scenario_canonical(sections, curves)

    def scenarios(self) -> list[str]:
        """Scenario names with streamed content, sorted."""
        return sorted(set(self._sections) | set(self._chunks))

    def completed_scenarios(self) -> dict[str, str]:
        """Scenario -> streamed checksum, for scenarios marked complete."""
        return dict(self._completed)

    def failed_scenarios(self) -> dict[str, list[dict]]:
        """Scenario -> sorted canonical failure records (degraded jobs)."""
        return {
            name: sort_failures(records)
            for name, records in sorted(self._failures.items())
        }

    def campaign_canonical(self) -> dict:
        """The reassembled canonical dict of the whole job.

        A failed scenario contributes only its ``failures`` records: any
        content it streamed before the quarantine (partial curves, early
        sections) is deliberately dropped, exactly as the in-process
        :meth:`~repro.campaign.results.CampaignResult.canonical_dict` holds
        no entry for a scenario that never produced a report.
        """
        canonical = {
            name: self.scenario_canonical(name)
            for name in self.scenarios()
            if name not in self._failures
        }
        if self._failures:
            canonical[FAILURES_KEY] = self.failed_scenarios()
        return canonical

    def report_bytes(self) -> bytes:
        """Canonical report bytes of the reassembled campaign."""
        return canonical_report_bytes(self.campaign_canonical())

    def verify(self) -> None:
        """Check every completed scenario's bytes against its checksum.

        Raises ``ValueError`` on any mismatch -- the end-to-end guard a
        subscriber runs after a stream terminates.
        """
        for name, expected in sorted(self._completed.items()):
            actual = report_checksum(
                canonical_report_bytes(self.scenario_canonical(name))
            )
            if actual != expected:
                raise ValueError(
                    f"scenario {name!r} reassembled to checksum {actual}, "
                    f"stream promised {expected}"
                )
