"""Static test compaction.

The top-up pattern counts reported in Table 1 (135 patterns for Core X, 528
for Core Y) are post-compaction numbers: a naive one-pattern-per-fault ATPG
run produces far more cubes, which a compaction pass then merges.  Two
classical static techniques are provided:

* *cube merging* -- two test cubes that never assign a net to opposite values
  can be merged into one pattern that detects both target faults,
* *reverse-order fault simulation* -- simulate the final pattern set in
  reverse order with fault dropping and discard patterns that no longer
  detect any new fault.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..faults.fault_list import FaultList
from ..faults.fault_sim import FaultSimulator
from ..netlist.circuit import Circuit
from .podem import TestCube


def merge_compatible_cubes(cubes: Sequence[TestCube]) -> list[TestCube]:
    """Greedy compatible-cube merging.

    Cubes are processed from most- to least-specified; each cube is merged
    into the first already-accepted cube it does not conflict with, otherwise
    it starts a new merged cube.  The result is order-deterministic.
    """
    ordered = sorted(cubes, key=lambda cube: (-cube.specified_bits(), sorted(cube.assignments)))
    merged: list[TestCube] = []
    for cube in ordered:
        for index, existing in enumerate(merged):
            if not existing.conflicts_with(cube):
                merged[index] = existing.merged_with(cube)
                break
        else:
            merged.append(TestCube(dict(cube.assignments), cube.fault))
    return merged


def reverse_order_compaction(
    circuit: Circuit,
    patterns: Sequence[dict[str, int]],
    fault_list: FaultList,
    observe_nets: Optional[Sequence[str]] = None,
    sim_backend: str = "python",
) -> list[dict[str, int]]:
    """Drop patterns that detect no fault not already detected by later patterns.

    Parameters
    ----------
    circuit:
        The netlist.
    patterns:
        Fully-specified patterns, in generation order.
    fault_list:
        The faults the pattern set is meant to cover; a *fresh copy* of the
        detection state is used, the argument is not mutated.
    observe_nets:
        Observation nets (defaults to the circuit's observation nets plus any
        the caller added, e.g. observation test points).
    sim_backend:
        Execution backend for the per-pattern scans ("python" or "numpy";
        the kept pattern set is backend-invariant).

    Returns
    -------
    list
        The retained patterns, in their original relative order.
    """
    simulator = FaultSimulator(circuit, observe_nets, backend=sim_backend)
    remaining = FaultList(fault_list.faults())
    keep: list[tuple[int, dict[str, int]]] = []
    for index in range(len(patterns) - 1, -1, -1):
        pattern = patterns[index]
        before = remaining.detected_count()
        simulator.simulate(remaining, [pattern], drop_detected=True)
        if remaining.detected_count() > before:
            keep.append((index, pattern))
    keep.sort(key=lambda item: item[0])
    return [pattern for _, pattern in keep]
