"""Five-valued D-calculus values.

PODEM reasons about the good and the faulty circuit simultaneously.  The
classical five-valued notation {0, 1, X, D, D'} is represented here as a pair of
three-valued components:

* ``good``  -- value in the fault-free circuit (0, 1 or ``None`` for X),
* ``faulty`` -- value in the faulty circuit (0, 1 or ``None`` for X).

``D``  is (good=1, faulty=0) and ``D'`` is (good=0, faulty=1); a *discrepancy*
(either D or D') at an observation net is what makes a pattern a test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Value5:
    """One net's value in the composite (good, faulty) circuit."""

    good: Optional[int]
    faulty: Optional[int]

    def __post_init__(self) -> None:
        for component in (self.good, self.faulty):
            if component not in (0, 1, None):
                raise ValueError("components must be 0, 1 or None (X)")

    @property
    def is_discrepancy(self) -> bool:
        """True for D or D' (good and faulty both known and different)."""
        return (
            self.good is not None
            and self.faulty is not None
            and self.good != self.faulty
        )

    @property
    def is_known(self) -> bool:
        """True when both components are assigned."""
        return self.good is not None and self.faulty is not None

    @property
    def symbol(self) -> str:
        """Classical textbook symbol: 0, 1, X, D or D'."""
        if self.good is None or self.faulty is None:
            return "X"
        if self.good == self.faulty:
            return str(self.good)
        return "D" if self.good == 1 else "D'"

    def __str__(self) -> str:
        return self.symbol


#: The five named constants.
ZERO = Value5(0, 0)
ONE = Value5(1, 1)
X = Value5(None, None)
D = Value5(1, 0)
D_BAR = Value5(0, 1)

#: The nine possible composite values, interned so the implication engines
#: never allocate per-net objects (the reference engine re-implies the whole
#: netlist on every PODEM decision; the compiled engine materialises
#: :class:`Value5` views only for diagnostics and differential tests).
VALUE_TABLE: dict[tuple[Optional[int], Optional[int]], Value5] = {
    (good, faulty): Value5(good, faulty)
    for good in (0, 1, None)
    for faulty in (0, 1, None)
}


def value5(good: Optional[int], faulty: Optional[int]) -> Value5:
    """Interned :class:`Value5` lookup (avoids per-net object construction)."""
    return VALUE_TABLE[(good, faulty)]


def from_symbol(symbol: str) -> Value5:
    """Parse a textbook symbol back into a :class:`Value5`."""
    table = {"0": ZERO, "1": ONE, "X": X, "x": X, "D": D, "D'": D_BAR}
    try:
        return table[symbol]
    except KeyError as exc:
        raise ValueError(f"unknown D-calculus symbol {symbol!r}") from exc
