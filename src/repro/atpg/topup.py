"""Top-up ATPG: deterministic patterns for the faults random BIST missed.

This is the "# of Top-Up Patterns / Fault Coverage 2" row of Table 1: after
the 20 K random patterns plateau (Fault Coverage 1), the remaining
random-pattern-resistant faults are targeted one by one with PODEM, the
resulting cubes are compacted, X bits are random-filled, and every new pattern
is fault-simulated against the whole remaining fault population (with
dropping) so that one deterministic pattern usually retires many faults.

The top-up patterns are applied through the input selector of the BIST
architecture (Fig. 1) -- in silicon they would be scanned in through the
Boundary-Scan port instead of coming from the PRPG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..faults.fault_list import FaultList
from ..faults.fault_sim import FaultSimulator
from ..faults.models import StuckAtFault
from ..netlist.circuit import Circuit
from .compaction import merge_compatible_cubes
from .podem import AtpgOutcome, PodemAtpg, TestCube


@dataclass
class TopUpResult:
    """Outcome of a top-up ATPG campaign."""

    patterns: list[dict[str, int]]
    cubes: list[TestCube]
    attempted_faults: int = 0
    successful_faults: int = 0
    untestable_faults: int = 0
    aborted_faults: int = 0
    coverage_before: float = 0.0
    coverage_after: float = 0.0
    backtracks: int = 0

    @property
    def pattern_count(self) -> int:
        """Number of top-up patterns produced (post compaction and random fill)."""
        return len(self.patterns)


@dataclass
class TopUpAtpg:
    """Driver that turns undetected faults into a compacted top-up pattern set."""

    circuit: Circuit
    observe_nets: Optional[Sequence[str]] = None
    backtrack_limit: int = 200
    seed: int = 2005
    #: Upper bound on targeted faults (None = all undetected faults).
    max_faults: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def run(self, fault_list: FaultList) -> TopUpResult:
        """Generate top-up patterns for the undetected faults in ``fault_list``.

        The fault list is updated in place: faults covered by the generated
        patterns are marked detected, proven-redundant faults are marked
        untestable, and aborted faults are marked aborted.
        """
        atpg = PodemAtpg(self.circuit, self.observe_nets, self.backtrack_limit)
        simulator = FaultSimulator(self.circuit, self.observe_nets)
        result = TopUpResult(patterns=[], cubes=[], coverage_before=fault_list.coverage())

        targets = [f for f in fault_list.undetected() if isinstance(f, StuckAtFault)]
        if self.max_faults is not None:
            targets = targets[: self.max_faults]

        stimulus_nets = self.circuit.stimulus_nets()
        pattern_base = 1_000_000  # top-up pattern indices live in their own range
        for fault in targets:
            # The fault may have been covered by a pattern generated for an
            # earlier fault in this very loop.
            if fault not in set(fault_list.undetected()):
                continue
            result.attempted_faults += 1
            attempt = atpg.generate(fault)
            result.backtracks += attempt.backtracks
            if attempt.outcome is AtpgOutcome.UNTESTABLE:
                fault_list.mark_untestable(fault)
                result.untestable_faults += 1
                continue
            if attempt.outcome is AtpgOutcome.ABORTED:
                fault_list.mark_aborted(fault)
                result.aborted_faults += 1
                continue
            result.successful_faults += 1
            result.cubes.append(attempt.cube)
            pattern = attempt.cube.fill_random(self._rng, stimulus_nets)
            pattern_index = pattern_base + len(result.patterns)
            simulator.simulate(
                fault_list, [pattern], drop_detected=True, pattern_offset=pattern_index
            )
            result.patterns.append(pattern)

        result.coverage_after = fault_list.coverage()
        return result

    def run_with_compaction(self, fault_list: FaultList) -> TopUpResult:
        """Like :meth:`run`, but merge compatible cubes into the final pattern set.

        The generation loop is incremental (a scratch fault list drops faults
        already covered by earlier cubes, so PODEM is only invoked for faults
        that still need a pattern).  The collected cubes are then merged,
        random-filled, and the *merged* patterns are fault-simulated against
        the real fault list -- so both the reported pattern count and the
        final coverage describe exactly the pattern set that would be scanned
        into silicon.
        """
        atpg = PodemAtpg(self.circuit, self.observe_nets, self.backtrack_limit)
        result = TopUpResult(patterns=[], cubes=[], coverage_before=fault_list.coverage())

        targets = [f for f in fault_list.undetected() if isinstance(f, StuckAtFault)]
        if self.max_faults is not None:
            targets = targets[: self.max_faults]

        # Scratch list used only to skip faults already covered by a cube
        # generated earlier in this loop.
        scratch = FaultList(targets)
        scratch_sim = FaultSimulator(self.circuit, self.observe_nets)
        stimulus_nets = self.circuit.stimulus_nets()
        cubes: list[TestCube] = []
        untestable: list[StuckAtFault] = []
        aborted: list[StuckAtFault] = []
        for fault in targets:
            if fault not in set(scratch.undetected()):
                continue
            result.attempted_faults += 1
            attempt = atpg.generate(fault)
            result.backtracks += attempt.backtracks
            if attempt.outcome is AtpgOutcome.UNTESTABLE:
                untestable.append(fault)
                result.untestable_faults += 1
                continue
            if attempt.outcome is AtpgOutcome.ABORTED:
                aborted.append(fault)
                result.aborted_faults += 1
                continue
            result.successful_faults += 1
            cubes.append(attempt.cube)
            filled = attempt.cube.fill_random(self._rng, stimulus_nets)
            scratch_sim.simulate(scratch, [filled], drop_detected=True)

        result.cubes = cubes
        merged = merge_compatible_cubes(cubes)
        patterns = [cube.fill_random(self._rng, stimulus_nets) for cube in merged]

        # Apply the final (compacted) pattern set to the real fault list.
        simulator = FaultSimulator(self.circuit, self.observe_nets)
        simulator.simulate(fault_list, patterns, drop_detected=True, pattern_offset=1_000_000)
        for fault in untestable:
            fault_list.mark_untestable(fault)
        for fault in aborted:
            fault_list.mark_aborted(fault)
        result.patterns = patterns
        result.coverage_after = fault_list.coverage()
        return result
