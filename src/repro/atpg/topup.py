"""Top-up ATPG: deterministic patterns for the faults random BIST missed.

This is the "# of Top-Up Patterns / Fault Coverage 2" row of Table 1: after
the 20 K random patterns plateau (Fault Coverage 1), the remaining
random-pattern-resistant faults are targeted one by one with PODEM, the
resulting cubes are compacted, X bits are random-filled, and every new pattern
is fault-simulated against the whole remaining fault population (with
dropping) so that one deterministic pattern usually retires many faults.

Two execution paths produce bit-identical results:

* ``engine="compiled"`` (the default) runs PODEM on the kernel-indexed
  incremental implication engine and **block-batches the candidate
  screening**: generated patterns are buffered, incrementally packed into
  ``block_size``-wide words, and retired against the remaining fault
  population with *one* PPSFP scan per block (either simulation backend)
  instead of one width-1 scan of the whole population per pattern -- which
  is where most of the top-up wall time used to go.  Whether a pending
  target is already covered by a buffered (not yet flushed) pattern is
  answered by a single cone resimulation of that fault over the packed
  buffer, so the skip decisions -- and with them the PODEM invocations, the
  random-fill RNG stream and every pattern byte -- exactly match the serial
  walk.
* ``engine="reference"`` preserves the original name-keyed
  one-pattern-at-a-time walk as the bit-exactness oracle and benchmark
  baseline.

The top-up patterns are applied through the input selector of the BIST
architecture (Fig. 1) -- in silicon they would be scanned in through the
Boundary-Scan port instead of coming from the PRPG.  Their campaign pattern
indices live in their own range starting at :data:`TOPUP_PATTERN_BASE`, so
they can never collide with random-phase indices.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..faults.fault_list import FaultList
from ..faults.fault_sim import FaultSimulator
from ..faults.models import FaultStatus, StuckAtFault
from ..netlist.circuit import Circuit
from ..simulation.packed import DEFAULT_BLOCK_SIZE, PatternBlock, mask_for
from .compaction import merge_compatible_cubes
from .podem import (
    BACKTRACE_FIRST_X,
    BACKTRACE_SCOAP,
    COMPILED_ENGINE,
    REFERENCE_ENGINE,
    AtpgOutcome,
    AtpgResult,
    PodemAtpg,
    TestCube,
)

logger = logging.getLogger(__name__)

#: First campaign pattern index of the top-up phase.  Random-phase indices
#: are always below this base (a 20 K-pattern session uses [0, 20480)), so
#: top-up first-detection indices can never collide with random-phase ones.
TOPUP_PATTERN_BASE = 1_000_000


@dataclass
class TopUpResult:
    """Outcome of a top-up ATPG campaign."""

    patterns: list[dict[str, int]]
    cubes: list[TestCube]
    attempted_faults: int = 0
    successful_faults: int = 0
    untestable_faults: int = 0
    aborted_faults: int = 0
    coverage_before: float = 0.0
    coverage_after: float = 0.0
    backtracks: int = 0
    #: Targets dropped by the ``max_faults`` cap before any ATPG ran (0 when
    #: every undetected fault was eligible) -- recorded so a capped run can
    #: never silently masquerade as a full one.
    skipped_targets: int = 0

    @property
    def pattern_count(self) -> int:
        """Number of top-up patterns produced (post compaction and random fill)."""
        return len(self.patterns)


class _ScreenBuffer:
    """Block-batched screening state: buffered patterns, packed incrementally.

    Patterns append into per-net packed words (bit *i* = pattern *i* of the
    buffer); :meth:`detects` answers "does any buffered pattern detect this
    fault?" with one fault-free evaluation per buffer change plus one cone
    resimulation per query, and :meth:`flush` retires the whole buffer
    against a fault list with a single PPSFP block scan.
    """

    def __init__(
        self,
        simulator: FaultSimulator,
        stimulus_nets: Sequence[str],
        block_size: int,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.simulator = simulator
        self.stimulus_nets = list(stimulus_nets)
        self.block_size = block_size
        self._count = 0
        self._words: dict[str, int] = {}
        self._table = simulator.kernel.make_table()
        self._dirty = False
        #: Patterns already flushed (the buffer's base offset within the
        #: top-up phase).
        self.flushed = 0

    def __len__(self) -> int:
        return self._count

    @property
    def emitted(self) -> int:
        """Total patterns seen (flushed + buffered)."""
        return self.flushed + self._count

    def append(self, pattern: Mapping[str, int]) -> None:
        """Buffer one fully-specified pattern (flush separately when full).

        Packing is incremental -- the per-net words *are* the buffer; no
        per-pattern dict is retained or re-packed at flush time.
        """
        bit = 1 << self._count
        words = self._words
        for net, value in pattern.items():
            if value:
                words[net] = words.get(net, 0) | bit
        self._count += 1
        self._dirty = True

    @property
    def full(self) -> bool:
        return self._count >= self.block_size

    def detects(self, fault: StuckAtFault) -> bool:
        """Does any *buffered* (unflushed) pattern detect ``fault``?"""
        num = self._count
        if not num:
            return False
        if self._dirty:
            mask = mask_for(num)
            kernel = self.simulator.kernel
            kernel.set_stimulus(self._table, self._words, mask)
            kernel.evaluate(self._table, mask)
            self._dirty = False
        return bool(self.simulator.detection_mask_ids(fault, self._table, num))

    def flush(self, fault_list: FaultList, pattern_offset_base: Optional[int]) -> None:
        """Retire the buffered patterns with one PPSFP scan (with dropping).

        ``pattern_offset_base`` is the global index of the *phase's* first
        pattern (detections are credited at ``base + position``); ``None``
        runs the scan purely for its dropping side effect (scratch lists).
        """
        if not self._count:
            return
        block = PatternBlock(
            {net: self._words.get(net, 0) for net in self.stimulus_nets},
            self._count,
        )
        self.simulator.simulate_blocks(
            fault_list,
            [block],
            drop_detected=True,
            pattern_offset=(pattern_offset_base or 0) + self.flushed,
        )
        self.flushed += self._count
        self._count = 0
        self._words = {}
        self._dirty = False


@dataclass
class TopUpAtpg:
    """Driver that turns undetected faults into a compacted top-up pattern set."""

    circuit: Circuit
    observe_nets: Optional[Sequence[str]] = None
    backtrack_limit: int = 200
    seed: int = 2005
    #: Upper bound on targeted faults (None = all undetected faults).
    max_faults: Optional[int] = None
    #: Execution engine: "compiled" (kernel-indexed PODEM + block-batched
    #: screening, the default) or "reference" (the name-keyed oracle walk).
    engine: str = COMPILED_ENGINE
    #: PODEM backtrace heuristic (compiled engine only; see PodemAtpg).
    backtrace: str = BACKTRACE_FIRST_X
    #: Screening block width: generated patterns buffered per PPSFP scan.
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Simulation backend for the screening scans ("python" or "numpy").
    sim_backend: str = "python"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.engine not in (COMPILED_ENGINE, REFERENCE_ENGINE):
            raise ValueError(f"unknown ATPG engine {self.engine!r}")
        if self.backtrace not in (BACKTRACE_FIRST_X, BACKTRACE_SCOAP):
            raise ValueError(f"unknown backtrace heuristic {self.backtrace!r}")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    # Target planning (shared by every path, including the campaign stage)
    # ------------------------------------------------------------------ #
    def plan_targets(
        self, fault_list: FaultList, log: bool = True
    ) -> tuple[list[StuckAtFault], int]:
        """The ordered ATPG target list and the count dropped by ``max_faults``.

        Deterministic given the fault list state, so the campaign's pooled
        top-up expander and the serial walk always agree on the targets.
        ``log=False`` silences the dropped-target notice for the planning
        re-runs the campaign stages perform (the count is always recorded in
        ``TopUpResult.skipped_targets`` regardless).
        """
        targets = [f for f in fault_list.undetected() if isinstance(f, StuckAtFault)]
        skipped = 0
        if self.max_faults is not None and len(targets) > self.max_faults:
            skipped = len(targets) - self.max_faults
            targets = targets[: self.max_faults]
            if log:
                logger.info(
                    "top-up max_faults=%d drops %d of %d undetected targets",
                    self.max_faults,
                    skipped,
                    skipped + len(targets),
                )
        return targets, skipped

    def podem(self) -> PodemAtpg:
        """The PODEM generator this driver's runs use.

        Public because the campaign's :class:`PodemShardStage` workers must
        generate with exactly the engine and heuristic the merge replay
        assumes.
        """
        return PodemAtpg(
            self.circuit,
            self.observe_nets,
            self.backtrack_limit,
            engine=self.engine,
            backtrace=self.backtrace,
        )

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #
    def run(self, fault_list: FaultList) -> TopUpResult:
        """Generate top-up patterns for the undetected faults in ``fault_list``.

        The fault list is updated in place: faults covered by the generated
        patterns are marked detected, proven-redundant faults are marked
        untestable, and aborted faults are marked aborted.
        """
        if self.engine == REFERENCE_ENGINE:
            return self._run_reference(fault_list)
        targets, skipped = self.plan_targets(fault_list)
        return self._run_batched(fault_list, targets, skipped, self.podem().generate)

    def run_with_compaction(self, fault_list: FaultList) -> TopUpResult:
        """Like :meth:`run`, but merge compatible cubes into the final pattern set.

        The generation loop is incremental (faults already covered by earlier
        cubes are skipped, so PODEM is only invoked for faults that still
        need a pattern).  The collected cubes are then merged, random-filled,
        and the *merged* patterns are fault-simulated against the real fault
        list -- so both the reported pattern count and the final coverage
        describe exactly the pattern set that would be scanned into silicon.
        """
        if self.engine == REFERENCE_ENGINE:
            return self._run_with_compaction_reference(fault_list)
        targets, skipped = self.plan_targets(fault_list)
        return self._run_with_compaction_batched(
            fault_list, targets, skipped, self.podem().generate
        )

    def run_prepared(
        self,
        fault_list: FaultList,
        prepared: Mapping[StuckAtFault, AtpgResult],
        compaction: bool = True,
    ) -> TopUpResult:
        """Replay a top-up campaign from pre-generated PODEM attempts.

        ``prepared`` maps every planned target to its (speculatively
        generated) :class:`AtpgResult` -- the campaign pipeline fans PODEM
        out across pool workers and then calls this to screen and compact
        deterministically.  Because a PODEM attempt depends only on the
        circuit and the fault, replaying the serial skip/fill/screen walk
        over prepared attempts is byte-identical to generating lazily.
        """
        targets, skipped = self.plan_targets(fault_list)
        missing = [fault for fault in targets if fault not in prepared]
        if missing:
            raise KeyError(
                f"run_prepared is missing attempts for {len(missing)} targets "
                f"(first: {missing[0]})"
            )
        generate = prepared.__getitem__
        if compaction:
            return self._run_with_compaction_batched(
                fault_list, targets, skipped, generate
            )
        return self._run_batched(fault_list, targets, skipped, generate)

    # ------------------------------------------------------------------ #
    # Compiled paths (block-batched screening)
    # ------------------------------------------------------------------ #
    def _run_batched(
        self,
        fault_list: FaultList,
        targets: Sequence[StuckAtFault],
        skipped: int,
        generate: Callable[[StuckAtFault], AtpgResult],
    ) -> TopUpResult:
        simulator = FaultSimulator(
            self.circuit, self.observe_nets, backend=self.sim_backend
        )
        result = TopUpResult(
            patterns=[],
            cubes=[],
            coverage_before=fault_list.coverage(),
            skipped_targets=skipped,
        )
        stimulus_nets = self.circuit.stimulus_nets()
        screen = _ScreenBuffer(simulator, stimulus_nets, self.block_size)
        for fault in targets:
            # The fault may have been covered by a pattern generated for an
            # earlier fault in this very loop -- either one already flushed
            # into the fault list or one still sitting in the buffer.
            if fault_list.record(fault).status is FaultStatus.DETECTED:
                continue
            if screen.detects(fault):
                continue
            result.attempted_faults += 1
            attempt = generate(fault)
            result.backtracks += attempt.backtracks
            if attempt.outcome is AtpgOutcome.UNTESTABLE:
                fault_list.mark_untestable(fault)
                result.untestable_faults += 1
                continue
            if attempt.outcome is AtpgOutcome.ABORTED:
                fault_list.mark_aborted(fault)
                result.aborted_faults += 1
                continue
            result.successful_faults += 1
            result.cubes.append(attempt.cube)
            pattern = attempt.cube.fill_random(self._rng, stimulus_nets)
            screen.append(pattern)
            result.patterns.append(pattern)
            if screen.full:
                screen.flush(fault_list, TOPUP_PATTERN_BASE)
        screen.flush(fault_list, TOPUP_PATTERN_BASE)
        result.coverage_after = fault_list.coverage()
        return result

    def _run_with_compaction_batched(
        self,
        fault_list: FaultList,
        targets: Sequence[StuckAtFault],
        skipped: int,
        generate: Callable[[StuckAtFault], AtpgResult],
    ) -> TopUpResult:
        result = TopUpResult(
            patterns=[],
            cubes=[],
            coverage_before=fault_list.coverage(),
            skipped_targets=skipped,
        )
        # Scratch list used only to skip faults already covered by a cube
        # generated earlier in this loop.
        scratch = FaultList(targets)
        scratch_sim = FaultSimulator(
            self.circuit, self.observe_nets, backend=self.sim_backend
        )
        stimulus_nets = self.circuit.stimulus_nets()
        screen = _ScreenBuffer(scratch_sim, stimulus_nets, self.block_size)
        cubes: list[TestCube] = []
        untestable: list[StuckAtFault] = []
        aborted: list[StuckAtFault] = []
        for fault in targets:
            if scratch.record(fault).status is FaultStatus.DETECTED:
                continue
            if screen.detects(fault):
                continue
            result.attempted_faults += 1
            attempt = generate(fault)
            result.backtracks += attempt.backtracks
            if attempt.outcome is AtpgOutcome.UNTESTABLE:
                untestable.append(fault)
                result.untestable_faults += 1
                continue
            if attempt.outcome is AtpgOutcome.ABORTED:
                aborted.append(fault)
                result.aborted_faults += 1
                continue
            result.successful_faults += 1
            cubes.append(attempt.cube)
            filled = attempt.cube.fill_random(self._rng, stimulus_nets)
            screen.append(filled)
            if screen.full:
                screen.flush(scratch, None)

        result.cubes = cubes
        merged = merge_compatible_cubes(cubes)
        patterns = [cube.fill_random(self._rng, stimulus_nets) for cube in merged]

        # Apply the final (compacted) pattern set to the real fault list in
        # block_size-wide packed words (detections are block-size invariant).
        simulator = FaultSimulator(
            self.circuit, self.observe_nets, backend=self.sim_backend
        )
        simulator.simulate(
            fault_list,
            patterns,
            block_size=self.block_size,
            drop_detected=True,
            pattern_offset=TOPUP_PATTERN_BASE,
        )
        for fault in untestable:
            fault_list.mark_untestable(fault)
        for fault in aborted:
            fault_list.mark_aborted(fault)
        result.patterns = patterns
        result.coverage_after = fault_list.coverage()
        return result

    # ------------------------------------------------------------------ #
    # Reference paths (the preserved name-keyed oracle walk)
    # ------------------------------------------------------------------ #
    def _run_reference(self, fault_list: FaultList) -> TopUpResult:
        atpg = PodemAtpg(
            self.circuit,
            self.observe_nets,
            self.backtrack_limit,
            engine=REFERENCE_ENGINE,
        )
        simulator = FaultSimulator(self.circuit, self.observe_nets)
        targets, skipped = self.plan_targets(fault_list)
        result = TopUpResult(
            patterns=[],
            cubes=[],
            coverage_before=fault_list.coverage(),
            skipped_targets=skipped,
        )

        stimulus_nets = self.circuit.stimulus_nets()
        for fault in targets:
            # The fault may have been covered by a pattern generated for an
            # earlier fault in this very loop.
            if fault not in set(fault_list.undetected()):
                continue
            result.attempted_faults += 1
            attempt = atpg.generate(fault)
            result.backtracks += attempt.backtracks
            if attempt.outcome is AtpgOutcome.UNTESTABLE:
                fault_list.mark_untestable(fault)
                result.untestable_faults += 1
                continue
            if attempt.outcome is AtpgOutcome.ABORTED:
                fault_list.mark_aborted(fault)
                result.aborted_faults += 1
                continue
            result.successful_faults += 1
            result.cubes.append(attempt.cube)
            pattern = attempt.cube.fill_random(self._rng, stimulus_nets)
            pattern_index = TOPUP_PATTERN_BASE + len(result.patterns)
            simulator.simulate(
                fault_list, [pattern], drop_detected=True, pattern_offset=pattern_index
            )
            result.patterns.append(pattern)

        result.coverage_after = fault_list.coverage()
        return result

    def _run_with_compaction_reference(self, fault_list: FaultList) -> TopUpResult:
        atpg = PodemAtpg(
            self.circuit,
            self.observe_nets,
            self.backtrack_limit,
            engine=REFERENCE_ENGINE,
        )
        targets, skipped = self.plan_targets(fault_list)
        result = TopUpResult(
            patterns=[],
            cubes=[],
            coverage_before=fault_list.coverage(),
            skipped_targets=skipped,
        )

        # Scratch list used only to skip faults already covered by a cube
        # generated earlier in this loop.
        scratch = FaultList(targets)
        scratch_sim = FaultSimulator(self.circuit, self.observe_nets)
        stimulus_nets = self.circuit.stimulus_nets()
        cubes: list[TestCube] = []
        untestable: list[StuckAtFault] = []
        aborted: list[StuckAtFault] = []
        for fault in targets:
            if fault not in set(scratch.undetected()):
                continue
            result.attempted_faults += 1
            attempt = atpg.generate(fault)
            result.backtracks += attempt.backtracks
            if attempt.outcome is AtpgOutcome.UNTESTABLE:
                untestable.append(fault)
                result.untestable_faults += 1
                continue
            if attempt.outcome is AtpgOutcome.ABORTED:
                aborted.append(fault)
                result.aborted_faults += 1
                continue
            result.successful_faults += 1
            cubes.append(attempt.cube)
            filled = attempt.cube.fill_random(self._rng, stimulus_nets)
            scratch_sim.simulate(scratch, [filled], drop_detected=True)

        result.cubes = cubes
        merged = merge_compatible_cubes(cubes)
        patterns = [cube.fill_random(self._rng, stimulus_nets) for cube in merged]

        # Apply the final (compacted) pattern set to the real fault list.
        simulator = FaultSimulator(self.circuit, self.observe_nets)
        simulator.simulate(
            fault_list, patterns, drop_detected=True, pattern_offset=TOPUP_PATTERN_BASE
        )
        for fault in untestable:
            fault_list.mark_untestable(fault)
        for fault in aborted:
            fault_list.mark_aborted(fault)
        result.patterns = patterns
        result.coverage_after = fault_list.coverage()
        return result
