"""Kernel-indexed 5-valued implication engine for PODEM.

This is the ATPG counterpart of the compiled simulation kernel: the
reference :class:`~repro.atpg.implication.FaultedEvaluator` rebuilds a full
``dict[str, Value5]`` on every PODEM decision, which made ATPG the last hot
path still running on name-keyed dicts.  :class:`CompiledFaultedEvaluator`
lowers the same composite (good/faulty) three-valued implication onto the
shared :class:`~repro.simulation.kernel.CompiledKernel`:

* values live in two flat lists indexed by dense net ID (``None`` = X),
* implication is **incremental**: assigning or retracting one stimulus net
  re-evaluates only the net's fanout cone (the kernel's cached
  :class:`~repro.simulation.kernel.ConePlan` schedule slice), not the whole
  circuit -- for a feed-forward netlist a single in-order pass over the
  changed cone reaches exactly the fixpoint the reference engine computes
  from scratch,
* the D-frontier scan walks only the fault site's cone (a discrepancy can
  exist nowhere else), and the X-path check runs over interned ID adjacency
  arrays,
* per-kernel derived analyses -- the ATPG fanout adjacency and the SCOAP
  backtrace guidance -- are computed once per circuit revision and memoised
  in ``CompiledKernel.analysis_cache``, so every fault targeted through
  :func:`~repro.simulation.kernel.shared_kernel` reuses them.

Equivalence contract: for any assignment sequence the flat arrays hold
exactly the values the reference engine's ``implied_values`` would produce,
and the frontier / X-path / test predicates agree decision for decision --
``tests/atpg/test_compiled_podem.py`` asserts this differentially, which is
what lets the compiled engine be the default without perturbing a single
generated cube.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import (
    OP_AND,
    OP_AND2,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NAND2,
    OP_NOR,
    OP_NOR2,
    OP_NOT,
    OP_OR,
    OP_OR2,
    OP_XNOR,
    OP_XNOR2,
    OP_XOR,
    OP_XOR2,
)
from ..faults.models import StuckAtFault
from ..simulation.kernel import CompiledKernel, shared_kernel

#: Opcode groups used by the 3-valued interpreter below.
_AND_OPS = (OP_AND, OP_AND2)
_NAND_OPS = (OP_NAND, OP_NAND2)
_OR_OPS = (OP_OR, OP_OR2)
_NOR_OPS = (OP_NOR, OP_NOR2)
_XOR_OPS = (OP_XOR, OP_XOR2)
_XNOR_OPS = (OP_XNOR, OP_XNOR2)

#: Opcode -> controlling input value (AND/NAND: 0, OR/NOR: 1), as in
#: :data:`repro.netlist.gates.CONTROLLING_VALUE` but keyed by opcode.
OP_CONTROLLING_VALUE: dict[int, int] = {
    OP_AND: 0,
    OP_AND2: 0,
    OP_NAND: 0,
    OP_NAND2: 0,
    OP_OR: 1,
    OP_OR2: 1,
    OP_NOR: 1,
    OP_NOR2: 1,
}

#: Opcodes that complement the value on the way through (backtrace parity).
INVERTING_OPS = frozenset(
    (OP_NOT, OP_NAND, OP_NAND2, OP_NOR, OP_NOR2, OP_XNOR, OP_XNOR2)
)


def eval3_op(op: int, inputs: Sequence[Optional[int]]) -> Optional[int]:
    """Scalar three-valued gate evaluation by opcode (``None`` = X).

    Semantically identical to :func:`repro.atpg.implication._eval3`, but
    dispatching on the compiled kernel's small-integer opcodes instead of
    :class:`~repro.netlist.gates.GateType` members.
    """
    if op in _AND_OPS or op in _NAND_OPS:
        if any(v == 0 for v in inputs):
            out: Optional[int] = 0
        elif all(v == 1 for v in inputs):
            out = 1
        else:
            out = None
        if op in _NAND_OPS and out is not None:
            out = 1 - out
        return out
    if op in _OR_OPS or op in _NOR_OPS:
        if any(v == 1 for v in inputs):
            out = 1
        elif all(v == 0 for v in inputs):
            out = 0
        else:
            out = None
        if op in _NOR_OPS and out is not None:
            out = 1 - out
        return out
    if op in _XOR_OPS or op in _XNOR_OPS:
        parity = 0
        for v in inputs:
            if v is None:
                return None
            parity ^= v
        return parity if op in _XOR_OPS else 1 - parity
    if op == OP_NOT:
        return None if inputs[0] is None else 1 - inputs[0]
    if op == OP_BUF:
        return inputs[0]
    if op == OP_MUX:
        sel, a, b = inputs
        if sel == 0:
            return a
        if sel == 1:
            return b
        if a is not None and a == b:
            return a
        return None
    if op == OP_CONST0:
        return 0
    return 1  # OP_CONST1


# --------------------------------------------------------------------------- #
# Per-kernel derived analyses (cached in CompiledKernel.analysis_cache)
# --------------------------------------------------------------------------- #
class AtpgAdjacency:
    """ID-space structural facts the PODEM queries need.

    Attributes
    ----------
    comb_readers:
        Per net ID, the output IDs of the combinational gates reading the
        net (the X-path successors).
    feeds_flop_d:
        Per net ID, 1 when the net drives some flop's D pin -- reaching such
        a net means reaching a pseudo primary output in the scan view.
    stimulus:
        Per net ID, 1 for stimulus nets (primary inputs and flop outputs).
    """

    def __init__(self, kernel: CompiledKernel) -> None:
        circuit = kernel.circuit
        net_id = kernel.net_id
        readers: list[list[int]] = [[] for _ in range(kernel.num_nets)]
        self.feeds_flop_d = bytearray(kernel.num_nets)
        for gate in circuit:
            if gate.is_flop:
                if gate.inputs:
                    self.feeds_flop_d[net_id[gate.inputs[0]]] = 1
                continue
            if gate.is_primary_input or gate.gate_type.is_source:
                continue
            out = net_id[gate.name]
            for net in gate.inputs:
                readers[net_id[net]].append(out)
        self.comb_readers: tuple[tuple[int, ...], ...] = tuple(
            tuple(outs) for outs in readers
        )
        self.stimulus = bytearray(kernel.num_nets)
        for sid in kernel.stimulus_ids:
            self.stimulus[sid] = 1


def atpg_adjacency(kernel: CompiledKernel) -> AtpgAdjacency:
    """The kernel's cached :class:`AtpgAdjacency` (computed once per revision)."""
    adjacency = kernel.analysis_cache.get("atpg_adjacency")
    if adjacency is None:
        adjacency = AtpgAdjacency(kernel)
        kernel.analysis_cache["atpg_adjacency"] = adjacency
    return adjacency


def scoap_guidance(kernel: CompiledKernel) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """SCOAP controllability arrays ``(cc0, cc1)`` indexed by net ID.

    Backtrace guidance for :class:`~repro.atpg.podem.PodemAtpg`'s ``"scoap"``
    mode: when several gate inputs are still X, descend into the one whose
    required value is cheapest to justify.  Computed once per kernel (one
    forward SCOAP pass) and cached via ``analysis_cache``, so the cost is
    shared by every fault targeted against the same circuit revision.
    """
    cached = kernel.analysis_cache.get("scoap_guidance")
    if cached is None:
        from ..testability.scoap import compute_scoap

        measures = compute_scoap(kernel.circuit)
        cc0 = tuple(measures[name].cc0 for name in kernel.net_names)
        cc1 = tuple(measures[name].cc1 for name in kernel.net_names)
        cached = (cc0, cc1)
        kernel.analysis_cache["scoap_guidance"] = cached
    return cached


# --------------------------------------------------------------------------- #
# The compiled composite evaluator
# --------------------------------------------------------------------------- #
class CompiledFaultedEvaluator:
    """Incremental good/faulty implication for one stuck-at fault, in ID space.

    The engine holds one persistent pair of value arrays.  ``assign`` /
    ``retract`` update a stimulus net and re-evaluate only its fanout cone;
    every query then reads the flat arrays directly.  All net identities are
    kernel IDs; :class:`~repro.atpg.podem.PodemAtpg` translates back to
    names only when it packages the final test cube.
    """

    def __init__(
        self,
        circuit: Circuit,
        fault: StuckAtFault,
        observe_nets: Optional[Sequence[str]] = None,
        kernel: Optional[CompiledKernel] = None,
    ) -> None:
        self.circuit = circuit
        self.fault = fault
        self.kernel = kernel if kernel is not None else shared_kernel(circuit)
        kern = self.kernel
        self.adjacency = atpg_adjacency(kern)
        net_id = kern.net_id

        observe = (
            list(observe_nets)
            if observe_nets is not None
            else circuit.observation_nets()
        )
        self.observe_ids: tuple[int, ...] = tuple(net_id[name] for name in observe)
        self._observe_mask = bytearray(kern.num_nets)
        for oid in self.observe_ids:
            self._observe_mask[oid] = 1

        # Fault-site resolution, mirroring the reference engine exactly:
        # stem faults force the whole net in the faulty component; branch
        # faults on a combinational gate force only that gate's view of the
        # driving net; branch faults on a flop's D pin leave the real
        # circuit untouched and are observed at a pseudo net.
        self._stem_site: Optional[int] = None  # forced faulty net ID (stem)
        self._branch_owner: Optional[int] = None  # owning gate out ID (comb branch)
        self._branch_pin: int = fault.pin
        self._flop_pseudo = False
        if fault.is_stem:
            self._stem_site = net_id[fault.gate]
        else:
            gate = circuit.gate(fault.gate)
            if gate.is_flop:
                self._flop_pseudo = True
            else:
                self._branch_owner = net_id[fault.gate]
        #: Net whose good value decides activation (= ``fault.faulted_net``).
        self.site_net_id: int = net_id[fault.faulted_net(circuit)]

        # Frontier scan schedule: the fault site's cone (plus, for a
        # combinational branch fault, the owning gate itself, which precedes
        # its cone in topological order).  Discrepancies cannot exist
        # anywhere else, so this is the only region worth scanning.
        if self._flop_pseudo:
            cone_ops: tuple = ()
            cone_outs: tuple = ()
            cone_operands: tuple = ()
        else:
            origin = (
                self._stem_site if self._stem_site is not None else self._branch_owner
            )
            plan = kern.cone_plan(origin)
            cone_ops, cone_outs, cone_operands = plan.ops, plan.outs, plan.operands
            if self._branch_owner is not None:
                pos = kern.sched_pos[self._branch_owner]
                cone_ops = (kern.ops[pos],) + cone_ops
                cone_outs = (kern.outs[pos],) + cone_outs
                cone_operands = (kern.operands[pos],) + cone_operands
        self._frontier_schedule = tuple(zip(cone_ops, cone_outs, cone_operands))

        self.good: list[Optional[int]] = [None] * kern.num_nets
        self.faulty: list[Optional[int]] = [None] * kern.num_nets
        self._imply_full()

    # ------------------------------------------------------------------ #
    # Implication
    # ------------------------------------------------------------------ #
    def _eval_gate(self, op: int, out: int, ins: tuple[int, ...]) -> None:
        """Re-evaluate one gate's good and faulty values in place."""
        good = self.good
        faulty = self.faulty
        good_out = eval3_op(op, [good[i] for i in ins])
        if out == self._stem_site:
            faulty_out: Optional[int] = self.fault.value
        elif out == self._branch_owner:
            pin = self._branch_pin
            faulty_ins = [
                self.fault.value if index == pin else faulty[i]
                for index, i in enumerate(ins)
            ]
            faulty_out = eval3_op(op, faulty_ins)
        else:
            faulty_out = eval3_op(op, [faulty[i] for i in ins])
        good[out] = good_out
        faulty[out] = faulty_out

    def _imply_full(self) -> None:
        """One full forward pass (engine construction / bulk reset)."""
        stem = self._stem_site
        fault_value = self.fault.value
        for sid in self.kernel.stimulus_ids:
            self.good[sid] = None
            self.faulty[sid] = fault_value if sid == stem else None
        for op, out, ins in zip(
            self.kernel.ops, self.kernel.outs, self.kernel.operands
        ):
            self._eval_gate(op, out, ins)

    def _propagate(self, changed_id: int) -> None:
        """Re-evaluate the fanout cone of one changed stimulus net."""
        plan = self.kernel.cone_plan(changed_id)
        for op, out, ins in zip(plan.ops, plan.outs, plan.operands):
            self._eval_gate(op, out, ins)

    def assign(self, net_id: int, value: int) -> None:
        """Set one stimulus net to 0/1 and incrementally re-implicate."""
        self.good[net_id] = value
        self.faulty[net_id] = (
            self.fault.value if net_id == self._stem_site else value
        )
        self._propagate(net_id)

    def retract(self, net_id: int) -> None:
        """Return one stimulus net to X and incrementally re-implicate."""
        self.good[net_id] = None
        self.faulty[net_id] = (
            self.fault.value if net_id == self._stem_site else None
        )
        self._propagate(net_id)

    # ------------------------------------------------------------------ #
    # PODEM queries
    # ------------------------------------------------------------------ #
    def is_test(self) -> bool:
        """True when some observation net carries D or D'."""
        good = self.good
        faulty = self.faulty
        for oid in self.observe_ids:
            g = good[oid]
            if g is not None:
                f = faulty[oid]
                if f is not None and f != g:
                    return True
        if self._flop_pseudo:
            g = good[self.site_net_id]
            if g is not None and g != self.fault.value:
                return True
        return False

    def fault_activated(self) -> Optional[bool]:
        """Good value at the fault site vs the stuck value (None while X)."""
        g = self.good[self.site_net_id]
        if g is None:
            return None
        return g != self.fault.value

    def d_frontier(self) -> list[int]:
        """Output IDs of D-frontier gates, in schedule (topological) order."""
        good = self.good
        faulty = self.faulty
        frontier: list[int] = []
        branch_owner = self._branch_owner
        for op, out, ins in self._frontier_schedule:
            if good[out] is not None and faulty[out] is not None:
                continue
            advanced = False
            for i in ins:
                g = good[i]
                if g is not None:
                    f = faulty[i]
                    if f is not None and f != g:
                        frontier.append(out)
                        advanced = True
                        break
            if advanced:
                continue
            if out == branch_owner:
                site_good = good[ins[self._branch_pin]]
                if site_good is not None and site_good != self.fault.value:
                    frontier.append(out)
        return frontier

    def x_path_exists(self, frontier: Sequence[int]) -> bool:
        """Can a frontier discrepancy still reach an observation net?"""
        good = self.good
        faulty = self.faulty
        observe = self._observe_mask
        feeds_flop_d = self.adjacency.feeds_flop_d
        readers = self.adjacency.comb_readers
        visited = bytearray(self.kernel.num_nets)
        stack = list(frontier)
        while stack:
            nid = stack.pop()
            if visited[nid]:
                continue
            visited[nid] = 1
            if observe[nid] or feeds_flop_d[nid]:
                return True
            for successor in readers[nid]:
                if good[successor] is None or faulty[successor] is None:
                    stack.append(successor)
        return False

    def is_x(self, net_id: int) -> bool:
        """True when the net's composite value is not fully known."""
        return self.good[net_id] is None or self.faulty[net_id] is None

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def values_by_name(self):
        """Name-keyed :class:`~repro.atpg.dcalc.Value5` view of the state.

        Shaped exactly like the reference engine's ``implied_values`` return
        (including the pseudo ``<flop>.D`` net for flop-D-pin branch faults),
        so differential tests can compare the two engines dict-for-dict.
        Diagnostics only -- the search itself never materialises this.
        """
        from .dcalc import value5

        values = {
            name: value5(self.good[nid], self.faulty[nid])
            for nid, name in enumerate(self.kernel.net_names)
        }
        if self._flop_pseudo:
            values[f"{self.fault.gate}.D"] = value5(
                self.good[self.site_net_id], self.fault.value
            )
        return values
