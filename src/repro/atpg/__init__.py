"""Deterministic test generation (S4).

Public API:

* :class:`~repro.atpg.podem.PodemAtpg` -- PODEM ATPG over the full-scan view,
* :class:`~repro.atpg.podem.TestCube` / :class:`~repro.atpg.podem.AtpgResult`,
* :class:`~repro.atpg.topup.TopUpAtpg` -- the top-up pattern campaign used by
  the logic BIST flow (Table 1's "# of Top-Up Patterns" / "Fault Coverage 2"),
  with block-batched candidate screening on the compiled engine,
* the static compaction helpers in :mod:`repro.atpg.compaction`,
* the five-valued D-calculus values in :mod:`repro.atpg.dcalc`, the
  name-keyed reference implication engine in :mod:`repro.atpg.implication`
  and its kernel-indexed incremental counterpart (the default) in
  :mod:`repro.atpg.compiled`.
"""

from .dcalc import D, D_BAR, ONE, X, ZERO, Value5, from_symbol, value5
from .implication import FaultedEvaluator
from .compiled import CompiledFaultedEvaluator, atpg_adjacency, scoap_guidance
from .podem import (
    BACKTRACE_FIRST_X,
    BACKTRACE_SCOAP,
    COMPILED_ENGINE,
    REFERENCE_ENGINE,
    AtpgOutcome,
    AtpgResult,
    PodemAtpg,
    TestCube,
)
from .compaction import merge_compatible_cubes, reverse_order_compaction
from .topup import TOPUP_PATTERN_BASE, TopUpAtpg, TopUpResult

__all__ = [
    "Value5",
    "ZERO",
    "ONE",
    "X",
    "D",
    "D_BAR",
    "from_symbol",
    "value5",
    "FaultedEvaluator",
    "CompiledFaultedEvaluator",
    "atpg_adjacency",
    "scoap_guidance",
    "AtpgOutcome",
    "AtpgResult",
    "PodemAtpg",
    "TestCube",
    "COMPILED_ENGINE",
    "REFERENCE_ENGINE",
    "BACKTRACE_FIRST_X",
    "BACKTRACE_SCOAP",
    "merge_compatible_cubes",
    "reverse_order_compaction",
    "TOPUP_PATTERN_BASE",
    "TopUpAtpg",
    "TopUpResult",
]
