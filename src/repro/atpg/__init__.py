"""Deterministic test generation (S4).

Public API:

* :class:`~repro.atpg.podem.PodemAtpg` -- PODEM ATPG over the full-scan view,
* :class:`~repro.atpg.podem.TestCube` / :class:`~repro.atpg.podem.AtpgResult`,
* :class:`~repro.atpg.topup.TopUpAtpg` -- the top-up pattern campaign used by
  the logic BIST flow (Table 1's "# of Top-Up Patterns" / "Fault Coverage 2"),
* the static compaction helpers in :mod:`repro.atpg.compaction`,
* the five-valued D-calculus values in :mod:`repro.atpg.dcalc` and the
  good/faulty implication engine in :mod:`repro.atpg.implication`.
"""

from .dcalc import D, D_BAR, ONE, X, ZERO, Value5, from_symbol
from .implication import FaultedEvaluator
from .podem import AtpgOutcome, AtpgResult, PodemAtpg, TestCube
from .compaction import merge_compatible_cubes, reverse_order_compaction
from .topup import TopUpAtpg, TopUpResult

__all__ = [
    "Value5",
    "ZERO",
    "ONE",
    "X",
    "D",
    "D_BAR",
    "from_symbol",
    "FaultedEvaluator",
    "AtpgOutcome",
    "AtpgResult",
    "PodemAtpg",
    "TestCube",
    "merge_compatible_cubes",
    "reverse_order_compaction",
    "TopUpAtpg",
    "TopUpResult",
]
