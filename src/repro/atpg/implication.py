"""Composite (good/faulty) three-valued implication engine for ATPG.

Given a partial assignment of the stimulus nets (primary inputs and scan flop
outputs), :class:`FaultedEvaluator` forward-simulates both the fault-free and
the faulty circuit in three-valued logic and answers the questions PODEM asks
on every decision:

* what are the implied values everywhere (``implied_values``),
* is the current assignment already a test (``is_test``),
* which gates form the D-frontier (``d_frontier``),
* can the discrepancy still reach an observation net through X-valued nets
  (``x_path_exists``) -- the classical X-path check used to prune dead ends.

This is the *reference* engine: it re-implies the whole netlist through
name-keyed dicts on every decision, and is preserved as the bit-exactness
oracle and benchmark baseline of the kernel-indexed incremental engine in
:mod:`repro.atpg.compiled` (the default since the compiled ATPG refactor).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..faults.models import StuckAtFault
from .dcalc import Value5, value5 as _value5


def _eval3(gate_type: GateType, inputs: Sequence[Optional[int]]) -> Optional[int]:
    """Scalar three-valued gate evaluation (None = X)."""
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in inputs):
            out: Optional[int] = 0
        elif all(v == 1 for v in inputs):
            out = 1
        else:
            out = None
        if gate_type is GateType.NAND and out is not None:
            out = 1 - out
        return out
    if gate_type in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in inputs):
            out = 1
        elif all(v == 0 for v in inputs):
            out = 0
        else:
            out = None
        if gate_type is GateType.NOR and out is not None:
            out = 1 - out
        return out
    if gate_type in (GateType.XOR, GateType.XNOR):
        if any(v is None for v in inputs):
            return None
        parity = 0
        for v in inputs:
            parity ^= v
        return parity if gate_type is GateType.XOR else 1 - parity
    if gate_type is GateType.NOT:
        return None if inputs[0] is None else 1 - inputs[0]
    if gate_type is GateType.BUF:
        return inputs[0]
    if gate_type is GateType.MUX:
        sel, a, b = inputs
        if sel == 0:
            return a
        if sel == 1:
            return b
        if a is not None and a == b:
            return a
        return None
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    raise ValueError(f"cannot evaluate gate type {gate_type.name}")


class FaultedEvaluator:
    """Three-valued good/faulty implication engine for one stuck-at fault."""

    def __init__(
        self,
        circuit: Circuit,
        fault: StuckAtFault,
        observe_nets: Optional[Sequence[str]] = None,
    ) -> None:
        self.circuit = circuit
        self.fault = fault
        self.observe_nets = (
            list(observe_nets) if observe_nets is not None else circuit.observation_nets()
        )
        self._observe_set = set(self.observe_nets)
        self.stimulus_nets = circuit.stimulus_nets()
        self._stimulus_set = set(self.stimulus_nets)
        self._schedule = [
            (name, circuit.gate(name).gate_type, tuple(circuit.gate(name).inputs))
            for name in circuit.topological_order()
            if not circuit.gate(name).is_primary_input and not circuit.gate(name).is_flop
        ]
        self._fanout = circuit.fanout_map()

    # ------------------------------------------------------------------ #
    # Forward implication
    # ------------------------------------------------------------------ #
    def implied_values(self, assignment: Mapping[str, int]) -> dict[str, Value5]:
        """Forward-implicate a partial stimulus assignment.

        Unassigned stimulus nets are X.  The faulty component injects the
        stuck value at the fault site: on the whole net for stem faults, and
        only into the owning gate's evaluation for branch faults.
        """
        fault = self.fault
        values: dict[str, Value5] = {}
        for net in self.stimulus_nets:
            assigned = assignment.get(net)
            good: Optional[int] = None if assigned is None else int(assigned)
            faulty = good
            if fault.is_stem and fault.gate == net:
                faulty = fault.value
            values[net] = _value5(good, faulty)

        for name, gate_type, inputs in self._schedule:
            good_inputs = [values[n].good for n in inputs]
            faulty_inputs = [values[n].faulty for n in inputs]
            if not fault.is_stem and fault.gate == name:
                faulty_inputs[fault.pin] = fault.value
            good = _eval3(gate_type, good_inputs) if inputs or gate_type.is_source else None
            faulty = _eval3(gate_type, faulty_inputs) if inputs or gate_type.is_source else None
            if fault.is_stem and fault.gate == name:
                faulty = fault.value
            values[name] = _value5(good, faulty)

        # Branch fault on a flop's D pin: the discrepancy is observed at the
        # D net as seen by that flop.  Model it by exposing a pseudo net value
        # at the flop's data input when that input is the faulted pin.
        if not fault.is_stem:
            gate = self.circuit.gate(fault.gate)
            if gate.is_flop:
                data_net = gate.inputs[fault.pin]
                good = values[data_net].good
                values[f"{fault.gate}.D"] = _value5(good, fault.value)
        return values

    # ------------------------------------------------------------------ #
    # Test / frontier queries
    # ------------------------------------------------------------------ #
    def is_test(self, values: Mapping[str, Value5]) -> bool:
        """True when some observation net carries D or D'."""
        for net in self.observe_nets:
            if net in values and values[net].is_discrepancy:
                return True
        # Flop-D-pin branch faults expose their pseudo observation net.
        if not self.fault.is_stem:
            pseudo = f"{self.fault.gate}.D"
            gate = self.circuit.gate(self.fault.gate)
            if gate.is_flop and pseudo in values and values[pseudo].is_discrepancy:
                return True
        return False

    def fault_activated(self, values: Mapping[str, Value5]) -> Optional[bool]:
        """Is the fault site set opposite to the stuck value in the good circuit?

        Returns ``True``/``False`` when the site's good value is known, ``None``
        while it is still X.
        """
        site_net = self.fault.faulted_net(self.circuit)
        good = values[site_net].good
        if good is None:
            return None
        return good != self.fault.value

    def d_frontier(self, values: Mapping[str, Value5]) -> list[str]:
        """Gates with a discrepancy on an input and an X on the output.

        For an input-branch fault the discrepancy is *created inside* the
        owning gate (the forced pin differs from the good value of the driving
        net), so that gate belongs to the frontier as soon as the fault is
        activated even though none of its input nets carries D/D' yet.
        """
        frontier = []
        for name, _, inputs in self._schedule:
            value = values[name]
            if value.good is not None and value.faulty is not None:
                continue
            if any(values[n].is_discrepancy for n in inputs):
                frontier.append(name)
                continue
            if not self.fault.is_stem and name == self.fault.gate:
                site_good = values[inputs[self.fault.pin]].good
                if site_good is not None and site_good != self.fault.value:
                    frontier.append(name)
        return frontier

    def x_path_exists(self, values: Mapping[str, Value5], frontier: Sequence[str]) -> bool:
        """Can a discrepancy at any frontier gate still reach an observation net?

        Breadth-first over nets whose value is not fully known yet; reaching an
        observation net (or the D input of a flop, which is a pseudo primary
        output in the scan view) means propagation is still possible.
        """
        visited: set[str] = set()
        queue = list(frontier)
        while queue:
            net = queue.pop()
            if net in visited:
                continue
            visited.add(net)
            if net in self._observe_set:
                return True
            for successor in self._fanout.get(net, ()):  # gates fed by this net
                gate = self.circuit.gate(successor)
                if gate.is_flop:
                    # Reaching a flop's D pin means reaching a pseudo-PO.
                    if net in self._observe_set or gate.inputs[0] == net:
                        return True
                    continue
                successor_value = values[successor]
                if successor_value.good is None or successor_value.faulty is None:
                    queue.append(successor)
        return False
