"""PODEM (Path-Oriented DEcision Making) deterministic test generation.

The paper's flow closes the coverage gap left by 20 K random patterns with a
small number of deterministic *top-up* patterns (135 for Core X, 528 for
Core Y).  Those patterns come from an ATPG engine; this module implements the
classical PODEM algorithm on the full-scan combinational view:

1. pick an *objective* -- first activate the fault, then advance the
   D-frontier through a gate by setting one of its X inputs to the gate's
   non-controlling value,
2. *backtrace* the objective to an unassigned stimulus net through X-valued
   nets, complementing the target value through inverting gates,
3. assign that stimulus net, run the implication engine, and check for a test
   / prune with the X-path check,
4. on a dead end, flip the most recent unflipped decision (backtrack).

The search is bounded by a backtrack limit; exceeding it marks the fault
*aborted*, while exhausting the decision tree proves the fault *untestable*.

Two implication engines execute the same search:

* ``engine="compiled"`` (the default) runs on the kernel-indexed incremental
  engine of :mod:`repro.atpg.compiled` -- flat ID arrays, cone-local
  re-implication, interned frontier/X-path checks.  Its decisions (and hence
  its cubes, backtrack counts and outcomes) are identical to the reference
  engine's by construction and by differential test.
* ``engine="reference"`` runs on the original name-keyed
  :class:`~repro.atpg.implication.FaultedEvaluator`, preserved as the
  bit-exactness oracle and benchmark baseline.

``backtrace="scoap"`` additionally switches the backtrace heuristic from
"first X input" to SCOAP-guided easiest-to-justify input selection; the
guidance tables are precomputed once per compiled kernel
(:func:`repro.atpg.compiled.scoap_guidance`) and shared across faults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..faults.models import StuckAtFault
from ..netlist.circuit import Circuit
from ..netlist.gates import CONTROLLING_VALUE, GateType, OP_CONST0, OP_CONST1
from .implication import FaultedEvaluator
from .compiled import (
    INVERTING_OPS,
    OP_CONTROLLING_VALUE,
    CompiledFaultedEvaluator,
    scoap_guidance,
)
from .dcalc import Value5

#: Supported implication engines.
COMPILED_ENGINE = "compiled"
REFERENCE_ENGINE = "reference"

#: Supported backtrace heuristics ("first_x" is the classical deterministic
#: choice and the oracle-identical default; "scoap" is guided).
BACKTRACE_FIRST_X = "first_x"
BACKTRACE_SCOAP = "scoap"


class AtpgOutcome(enum.Enum):
    """Result classification for one ATPG attempt."""

    #: A test cube was found.
    SUCCESS = "success"
    #: The decision tree was exhausted: the fault is untestable (redundant).
    UNTESTABLE = "untestable"
    #: The backtrack limit was hit before a conclusion.
    ABORTED = "aborted"


@dataclass
class TestCube:
    """A (partially specified) test: stimulus net -> 0/1 for assigned nets only."""

    #: Tell pytest this is not a test class despite the name.
    __test__ = False

    assignments: dict[str, int]
    fault: StuckAtFault

    def specified_bits(self) -> int:
        """Number of care bits."""
        return len(self.assignments)

    def conflicts_with(self, other: "TestCube") -> bool:
        """True when the two cubes assign some net to opposite values."""
        small, large = (
            (self.assignments, other.assignments)
            if len(self.assignments) <= len(other.assignments)
            else (other.assignments, self.assignments)
        )
        return any(net in large and large[net] != value for net, value in small.items())

    def merged_with(self, other: "TestCube") -> "TestCube":
        """Union of two compatible cubes (caller must check compatibility)."""
        merged = dict(self.assignments)
        merged.update(other.assignments)
        return TestCube(merged, self.fault)

    def fill_random(self, rng, stimulus_nets: Sequence[str]) -> dict[str, int]:
        """Fully-specified pattern: unassigned stimulus nets take random values."""
        return {
            net: self.assignments.get(net, rng.randint(0, 1)) for net in stimulus_nets
        }


@dataclass
class AtpgResult:
    """Outcome of one :meth:`PodemAtpg.generate` call."""

    outcome: AtpgOutcome
    cube: Optional[TestCube] = None
    backtracks: int = 0
    decisions: int = 0


@dataclass
class PodemAtpg:
    """PODEM test generator over a full-scan combinational circuit view."""

    circuit: Circuit
    observe_nets: Optional[Sequence[str]] = None
    backtrack_limit: int = 200
    #: Implication engine: "compiled" (kernel-indexed, default) or
    #: "reference" (name-keyed oracle).
    engine: str = COMPILED_ENGINE
    #: Backtrace heuristic: "first_x" (oracle-identical) or "scoap" (guided).
    backtrace: str = BACKTRACE_FIRST_X
    _objective_cache: dict = field(default_factory=dict, repr=False)

    def generate(self, fault: StuckAtFault) -> AtpgResult:
        """Attempt to generate a test cube for ``fault``."""
        if self.engine == REFERENCE_ENGINE:
            return self._generate_reference(fault)
        if self.engine != COMPILED_ENGINE:
            raise ValueError(f"unknown ATPG engine {self.engine!r}")
        return self._generate_compiled(fault)

    # ------------------------------------------------------------------ #
    # Compiled (kernel-indexed) search
    # ------------------------------------------------------------------ #
    def _generate_compiled(self, fault: StuckAtFault) -> AtpgResult:
        if self.backtrace not in (BACKTRACE_FIRST_X, BACKTRACE_SCOAP):
            raise ValueError(f"unknown backtrace heuristic {self.backtrace!r}")
        evaluator = CompiledFaultedEvaluator(self.circuit, fault, self.observe_nets)
        kernel = evaluator.kernel
        guidance = (
            scoap_guidance(kernel) if self.backtrace == BACKTRACE_SCOAP else None
        )
        assignment: dict[int, int] = {}
        # Decision stack entries: (net ID, value, already_flipped).
        stack: list[tuple[int, int, bool]] = []
        backtracks = 0
        decisions = 0

        while True:
            if evaluator.is_test():
                names = kernel.net_names
                cube = TestCube(
                    {names[nid]: value for nid, value in assignment.items()}, fault
                )
                return AtpgResult(AtpgOutcome.SUCCESS, cube, backtracks, decisions)

            objective = self._objective_ids(evaluator, fault)
            dead_end = objective is None
            if not dead_end:
                frontier = evaluator.d_frontier()
                activated = evaluator.fault_activated()
                if activated is False:
                    dead_end = True
                elif activated is True and not frontier and not evaluator.is_test():
                    # Fault activated but the discrepancy vanished entirely.
                    dead_end = True
                elif frontier and not evaluator.x_path_exists(frontier):
                    dead_end = True

            if not dead_end:
                target_net, target_value = self._backtrace_ids(
                    evaluator, guidance, *objective
                )
                if target_net is None:
                    dead_end = True
                else:
                    assignment[target_net] = target_value
                    stack.append((target_net, target_value, False))
                    decisions += 1
                    evaluator.assign(target_net, target_value)
                    continue

            # Dead end: backtrack.
            flipped = False
            while stack:
                net, value, already_flipped = stack.pop()
                del assignment[net]
                evaluator.retract(net)
                if not already_flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return AtpgResult(AtpgOutcome.ABORTED, None, backtracks, decisions)
                    assignment[net] = 1 - value
                    stack.append((net, 1 - value, True))
                    evaluator.assign(net, 1 - value)
                    flipped = True
                    break
            if not flipped:
                return AtpgResult(AtpgOutcome.UNTESTABLE, None, backtracks, decisions)

    def _objective_ids(
        self, evaluator: CompiledFaultedEvaluator, fault: StuckAtFault
    ) -> Optional[tuple[int, int]]:
        """Classical PODEM objective in ID space (mirrors the reference)."""
        activated = evaluator.fault_activated()
        if activated is None:
            # Drive the fault site to the complement of the stuck value.
            return evaluator.site_net_id, 1 - fault.value
        if activated is False:
            return None
        frontier = evaluator.d_frontier()
        if not frontier:
            return None
        # Advance the frontier gate closest to an observation net (deepest
        # level; ties resolve to the first in schedule order, exactly as the
        # reference engine's ``max`` does).
        levels = evaluator.kernel.net_levels
        gate_id = frontier[0]
        best_level = levels[gate_id]
        for candidate in frontier[1:]:
            if levels[candidate] > best_level:
                gate_id = candidate
                best_level = levels[candidate]
        kernel = evaluator.kernel
        pos = kernel.sched_pos[gate_id]
        op = kernel.ops[pos]
        control = OP_CONTROLLING_VALUE.get(op)
        non_controlling = 1 - control if control is not None else 1
        for nid in kernel.operands[pos]:
            if evaluator.is_x(nid):
                return nid, non_controlling
        return None

    def _backtrace_ids(
        self,
        evaluator: CompiledFaultedEvaluator,
        guidance: Optional[tuple[tuple[int, ...], tuple[int, ...]]],
        objective_net: int,
        objective_value: int,
    ) -> tuple[Optional[int], int]:
        """Trace the objective back to an unassigned stimulus net (ID space).

        ``guidance`` is ``None`` for the classical first-X-input descent or
        the per-kernel ``(cc0, cc1)`` SCOAP arrays for guided descent (pick
        the X input whose required value is cheapest to justify).
        """
        kernel = evaluator.kernel
        stimulus = evaluator.adjacency.stimulus
        sched_pos = kernel.sched_pos
        net, value = objective_net, objective_value
        guard = 0
        max_steps = kernel.num_nets + 10
        while not stimulus[net]:
            guard += 1
            if guard > max_steps:
                return None, value
            pos = sched_pos.get(net)
            if pos is None:
                return None, value
            op = kernel.ops[pos]
            if op == OP_CONST0 or op == OP_CONST1:
                return None, value
            if op in INVERTING_OPS:
                value = 1 - value
            chosen: Optional[int] = None
            if guidance is None:
                for nid in kernel.operands[pos]:
                    if evaluator.is_x(nid):
                        chosen = nid
                        break
            else:
                cc = guidance[value]
                best_cost: Optional[int] = None
                for nid in kernel.operands[pos]:
                    if evaluator.is_x(nid) and (
                        best_cost is None or cc[nid] < best_cost
                    ):
                        chosen = nid
                        best_cost = cc[nid]
            if chosen is None:
                return None, value
            net = chosen
        if evaluator.good[net] is not None:
            return None, value
        return net, value

    # ------------------------------------------------------------------ #
    # Reference (name-keyed) search -- the preserved oracle
    # ------------------------------------------------------------------ #
    def _generate_reference(self, fault: StuckAtFault) -> AtpgResult:
        evaluator = FaultedEvaluator(self.circuit, fault, self.observe_nets)
        assignment: dict[str, int] = {}
        # Decision stack entries: (net, value, already_flipped).
        stack: list[tuple[str, int, bool]] = []
        backtracks = 0
        decisions = 0

        values = evaluator.implied_values(assignment)
        while True:
            if evaluator.is_test(values):
                return AtpgResult(AtpgOutcome.SUCCESS, TestCube(dict(assignment), fault),
                                  backtracks, decisions)

            objective = self._objective(evaluator, values, fault)
            dead_end = objective is None
            if not dead_end:
                frontier = evaluator.d_frontier(values)
                activated = evaluator.fault_activated(values)
                if activated is False:
                    dead_end = True
                elif activated is True and not frontier and not evaluator.is_test(values):
                    # Fault activated but the discrepancy vanished entirely.
                    dead_end = True
                elif frontier and not evaluator.x_path_exists(values, frontier):
                    dead_end = True

            if not dead_end:
                target_net, target_value = self._backtrace(evaluator, values, *objective)
                if target_net is None:
                    dead_end = True
                else:
                    assignment[target_net] = target_value
                    stack.append((target_net, target_value, False))
                    decisions += 1
                    values = evaluator.implied_values(assignment)
                    continue

            # Dead end: backtrack.
            flipped = False
            while stack:
                net, value, already_flipped = stack.pop()
                del assignment[net]
                if not already_flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return AtpgResult(AtpgOutcome.ABORTED, None, backtracks, decisions)
                    assignment[net] = 1 - value
                    stack.append((net, 1 - value, True))
                    values = evaluator.implied_values(assignment)
                    flipped = True
                    break
            if not flipped:
                return AtpgResult(AtpgOutcome.UNTESTABLE, None, backtracks, decisions)

    # ------------------------------------------------------------------ #
    # Objective selection
    # ------------------------------------------------------------------ #
    def _objective(
        self,
        evaluator: FaultedEvaluator,
        values: dict[str, Value5],
        fault: StuckAtFault,
    ) -> Optional[tuple[str, int]]:
        """Classical PODEM objective: activate the fault, then advance the D-frontier."""
        activated = evaluator.fault_activated(values)
        if activated is None:
            # Drive the fault site to the complement of the stuck value.
            return fault.faulted_net(self.circuit), 1 - fault.value
        if activated is False:
            return None
        frontier = evaluator.d_frontier(values)
        if not frontier:
            return None
        # Advance the frontier gate closest to an observation net (approximated
        # by the deepest level, which tends to be nearest the outputs).
        levels = self.circuit.levels()
        gate_name = max(frontier, key=lambda name: levels.get(name, 0))
        gate = self.circuit.gate(gate_name)
        control = CONTROLLING_VALUE.get(gate.gate_type)
        non_controlling = 1 - control if control is not None else 1
        for net in gate.inputs:
            value = values[net]
            if value.good is None or value.faulty is None:
                return net, non_controlling
        return None

    # ------------------------------------------------------------------ #
    # Backtrace
    # ------------------------------------------------------------------ #
    def _backtrace(
        self,
        evaluator: FaultedEvaluator,
        values: dict[str, Value5],
        objective_net: str,
        objective_value: int,
    ) -> tuple[Optional[str], int]:
        """Trace the objective back to an unassigned stimulus net.

        Follows X-valued nets from the objective toward the inputs, inverting
        the target value through inverting gate types, and picking the easiest
        input heuristically (the first X input, which in a levelised netlist is
        a stable deterministic choice).
        """
        stimulus = set(evaluator.stimulus_nets)
        net, value = objective_net, objective_value
        guard = 0
        max_steps = len(self.circuit) + 10
        while net not in stimulus:
            guard += 1
            if guard > max_steps:
                return None, value
            gate = self.circuit.gate(net)
            if gate.gate_type.is_source:
                return None, value
            if gate.gate_type in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR):
                value = 1 - value
            x_inputs = [
                n
                for n in gate.inputs
                if values[n].good is None or values[n].faulty is None
            ]
            if not x_inputs:
                return None, value
            net = x_inputs[0]
        if values[net].good is not None:
            return None, value
        return net, value
