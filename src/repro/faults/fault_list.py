"""Fault-list construction and bookkeeping.

A :class:`FaultList` tracks every fault's status through the BIST campaign:
random-pattern simulation marks faults detected (with the index of the first
detecting pattern), the top-up ATPG phase marks remaining faults detected,
untestable, or aborted, and the coverage figures the paper reports in Table 1
("Fault Coverage 1" after random patterns, "Fault Coverage 2" after top-up)
are just two snapshots of the same list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from .models import OUTPUT_PIN, FaultStatus, StuckAtFault, TransitionFault


def enumerate_stuck_at_faults(
    circuit: Circuit, include_branches: bool = True
) -> list[StuckAtFault]:
    """Enumerate the uncollapsed single stuck-at fault universe of ``circuit``.

    Every gate output stem gets s-a-0/s-a-1; when ``include_branches`` is true,
    every input pin of every gate whose driving net has fanout > 1 also gets
    both faults (branch faults on single-fanout nets are equivalent to the stem
    faults and are skipped to keep the universe closer to the collapsed size
    commercial tools report).
    """
    faults: list[StuckAtFault] = []
    fanout = circuit.fanout_map()
    for gate in circuit:
        if gate.gate_type in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append(StuckAtFault(gate.name, OUTPUT_PIN, 0))
        faults.append(StuckAtFault(gate.name, OUTPUT_PIN, 1))
        if not include_branches:
            continue
        for pin, net in enumerate(gate.inputs):
            if len(fanout.get(net, ())) > 1:
                faults.append(StuckAtFault(gate.name, pin, 0))
                faults.append(StuckAtFault(gate.name, pin, 1))
    return faults


def enumerate_transition_faults(
    circuit: Circuit, include_branches: bool = False
) -> list[TransitionFault]:
    """Enumerate transition-delay faults (slow-to-rise / slow-to-fall)."""
    faults: list[TransitionFault] = []
    fanout = circuit.fanout_map()
    for gate in circuit:
        if gate.gate_type in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append(TransitionFault(gate.name, OUTPUT_PIN, True))
        faults.append(TransitionFault(gate.name, OUTPUT_PIN, False))
        if not include_branches:
            continue
        for pin, net in enumerate(gate.inputs):
            if len(fanout.get(net, ())) > 1:
                faults.append(TransitionFault(gate.name, pin, True))
                faults.append(TransitionFault(gate.name, pin, False))
    return faults


@dataclass
class FaultRecord:
    """Status and detection history of one fault."""

    fault: object
    status: FaultStatus = FaultStatus.UNDETECTED
    #: Index (within the overall campaign) of the first detecting pattern.
    first_detection: Optional[int] = None
    #: Total number of detecting patterns seen (n-detect statistics).
    detection_count: int = 0


class FaultList:
    """Ordered collection of faults with status tracking and coverage queries."""

    def __init__(self, faults: Iterable[object] = ()) -> None:
        self._records: dict[object, FaultRecord] = {}
        for fault in faults:
            self.add(fault)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def stuck_at(cls, circuit: Circuit, include_branches: bool = True) -> "FaultList":
        """Full single stuck-at fault list for ``circuit``."""
        return cls(enumerate_stuck_at_faults(circuit, include_branches))

    @classmethod
    def transition(cls, circuit: Circuit, include_branches: bool = False) -> "FaultList":
        """Full transition fault list for ``circuit``."""
        return cls(enumerate_transition_faults(circuit, include_branches))

    def add(self, fault: object) -> None:
        """Add one fault (idempotent)."""
        if fault not in self._records:
            self._records[fault] = FaultRecord(fault)

    # ------------------------------------------------------------------ #
    # Status updates
    # ------------------------------------------------------------------ #
    def record(self, fault: object) -> FaultRecord:
        """The :class:`FaultRecord` for ``fault``."""
        return self._records[fault]

    def mark_detected(self, fault: object, pattern_index: Optional[int] = None) -> None:
        """Mark ``fault`` detected (keeps the earliest detecting pattern index)."""
        record = self._records[fault]
        record.detection_count += 1
        if record.status is not FaultStatus.DETECTED:
            record.status = FaultStatus.DETECTED
            record.first_detection = pattern_index
        elif pattern_index is not None and (
            record.first_detection is None or pattern_index < record.first_detection
        ):
            record.first_detection = pattern_index

    def mark_untestable(self, fault: object) -> None:
        """Mark ``fault`` proven untestable (excluded from the coverage denominator
        when using the *testable* coverage definition)."""
        self._records[fault].status = FaultStatus.UNTESTABLE

    def mark_aborted(self, fault: object) -> None:
        """Mark ``fault`` aborted by ATPG (still counted as undetected)."""
        record = self._records[fault]
        if record.status is FaultStatus.UNDETECTED:
            record.status = FaultStatus.ABORTED

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[object]:
        return iter(self._records)

    def __contains__(self, fault: object) -> bool:
        return fault in self._records

    def faults(self) -> list[object]:
        """All faults, in insertion order."""
        return list(self._records)

    def with_status(self, status: FaultStatus) -> list[object]:
        """Faults currently in ``status``."""
        return [f for f, r in self._records.items() if r.status is status]

    def undetected(self) -> list[object]:
        """Faults not yet detected (includes aborted)."""
        return [
            f
            for f, r in self._records.items()
            if r.status in (FaultStatus.UNDETECTED, FaultStatus.ABORTED)
        ]

    def detected(self) -> list[object]:
        """Faults detected so far."""
        return self.with_status(FaultStatus.DETECTED)

    def detected_count(self) -> int:
        """Number of detected faults."""
        return sum(1 for r in self._records.values() if r.status is FaultStatus.DETECTED)

    def untestable_count(self) -> int:
        """Number of proven-untestable faults."""
        return sum(1 for r in self._records.values() if r.status is FaultStatus.UNTESTABLE)

    def coverage(self, exclude_untestable: bool = False) -> float:
        """Fault coverage in [0, 1].

        ``exclude_untestable=False`` is raw fault coverage (detected / all),
        the figure DFT reports usually quote; ``True`` gives test efficiency
        (detected / (all - untestable)).
        """
        total = len(self._records)
        if exclude_untestable:
            total -= self.untestable_count()
        if total == 0:
            return 1.0
        return self.detected_count() / total

    def n_detect_histogram(self, max_n: int = 10) -> dict[int, int]:
        """Histogram of detection counts, clipped at ``max_n`` (for N-detect studies)."""
        histogram: dict[int, int] = {n: 0 for n in range(max_n + 1)}
        for record in self._records.values():
            histogram[min(record.detection_count, max_n)] += 1
        return histogram

    def filter(self, predicate: Callable[[object], bool]) -> "FaultList":
        """New fault list containing only faults satisfying ``predicate`` (fresh records)."""
        return FaultList(f for f in self._records if predicate(f))

    def restricted_to(self, faults: Sequence[object]) -> "FaultList":
        """New fault list containing only the given faults, preserving records."""
        subset = FaultList()
        for fault in faults:
            if fault in self._records:
                record = self._records[fault]
                subset._records[fault] = FaultRecord(
                    fault, record.status, record.first_detection, record.detection_count
                )
        return subset
