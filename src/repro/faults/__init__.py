"""Fault models and fault simulation (S3).

Public API:

* :class:`~repro.faults.models.StuckAtFault` / :class:`~repro.faults.models.TransitionFault`,
* :class:`~repro.faults.fault_list.FaultList` and the fault enumeration helpers,
* :func:`~repro.faults.collapse.collapse_stuck_at` -- structural equivalence collapsing,
* :class:`~repro.faults.fault_sim.FaultSimulator` -- PPSFP stuck-at simulation
  with fault dropping and fault-effect profiling,
* :class:`~repro.faults.transition_sim.TransitionFaultSimulator` -- launch-on-capture
  transition fault simulation for the double-capture scheme,
* the statistics helpers in :mod:`repro.faults.statistics`.
"""

from .models import OUTPUT_PIN, Fault, FaultStatus, StuckAtFault, TransitionFault
from .fault_list import (
    FaultList,
    FaultRecord,
    enumerate_stuck_at_faults,
    enumerate_transition_faults,
)
from .collapse import CollapsedFaults, collapse_stuck_at
from .fault_sim import FaultSimulationResult, FaultSimulator
from .transition_sim import (
    TransitionFaultSimulator,
    TransitionSimulationResult,
    derive_capture_patterns,
)
from .statistics import (
    CoveragePoint,
    coverage_curve_from_samples,
    coverage_plateau_slope,
    detection_summary,
    escape_rate,
    patterns_to_reach,
    random_resistant_faults,
)

__all__ = [
    "OUTPUT_PIN",
    "Fault",
    "FaultStatus",
    "StuckAtFault",
    "TransitionFault",
    "FaultList",
    "FaultRecord",
    "enumerate_stuck_at_faults",
    "enumerate_transition_faults",
    "CollapsedFaults",
    "collapse_stuck_at",
    "FaultSimulationResult",
    "FaultSimulator",
    "TransitionFaultSimulator",
    "TransitionSimulationResult",
    "derive_capture_patterns",
    "CoveragePoint",
    "coverage_curve_from_samples",
    "coverage_plateau_slope",
    "detection_summary",
    "escape_rate",
    "patterns_to_reach",
    "random_resistant_faults",
]
