"""Fault models and fault simulation (S3).

Public API:

* :class:`~repro.faults.models.StuckAtFault` / :class:`~repro.faults.models.TransitionFault`,
* :class:`~repro.faults.fault_list.FaultList` and the fault enumeration helpers,
* :func:`~repro.faults.collapse.collapse_stuck_at` -- structural equivalence collapsing,
* :class:`~repro.faults.fault_sim.FaultSimulator` -- PPSFP stuck-at simulation
  with fault dropping and fault-effect profiling,
* :class:`~repro.faults.transition_sim.TransitionFaultSimulator` -- launch-on-capture
  transition fault simulation for the double-capture scheme,
* the statistics helpers in :mod:`repro.faults.statistics`.

Both simulators run on the compiled integer-indexed kernel
(:mod:`repro.simulation.kernel`): nets are interned to dense IDs at
construction, good values live in flat ``list[int]`` tables, fanout cones are
pre-compiled into per-site ID schedules, and pattern blocks of any width
(64 / 256 / 1024 patterns per word) stream through
:meth:`~repro.faults.fault_sim.FaultSimulator.simulate_blocks` without
per-pattern dicts.  The name-keyed entry points remain as thin adapters.
"""

from .models import OUTPUT_PIN, Fault, FaultStatus, StuckAtFault, TransitionFault
from .fault_list import (
    FaultList,
    FaultRecord,
    enumerate_stuck_at_faults,
    enumerate_transition_faults,
)
from .collapse import CollapsedFaults, collapse_stuck_at
from .fault_sim import (
    FaultSimShardState,
    FaultSimulationResult,
    FaultSimulator,
    check_strict_patterns,
)
from .transition_sim import (
    TransitionFaultSimulator,
    TransitionSimShardState,
    TransitionSimulationResult,
    derive_capture_patterns,
)
from .statistics import (
    CoveragePoint,
    coverage_curve_from_samples,
    coverage_plateau_slope,
    detection_summary,
    escape_rate,
    patterns_to_reach,
    random_resistant_faults,
)

__all__ = [
    "OUTPUT_PIN",
    "Fault",
    "FaultStatus",
    "StuckAtFault",
    "TransitionFault",
    "FaultList",
    "FaultRecord",
    "enumerate_stuck_at_faults",
    "enumerate_transition_faults",
    "CollapsedFaults",
    "collapse_stuck_at",
    "FaultSimShardState",
    "FaultSimulationResult",
    "FaultSimulator",
    "check_strict_patterns",
    "TransitionFaultSimulator",
    "TransitionSimShardState",
    "TransitionSimulationResult",
    "derive_capture_patterns",
    "CoveragePoint",
    "coverage_curve_from_samples",
    "coverage_plateau_slope",
    "detection_summary",
    "escape_rate",
    "patterns_to_reach",
    "random_resistant_faults",
]
