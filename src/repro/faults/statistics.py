"""Coverage statistics and random-pattern-resistance analysis.

Small helpers shared by the reporting layer, the test-point insertion engine
and the benchmark harness: coverage curves, detection profiles, and the
identification of *random-pattern-resistant* faults -- the population the
paper attacks with fault-simulation-guided observation points and top-up ATPG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .fault_list import FaultList
from .models import FaultStatus


@dataclass(frozen=True)
class CoveragePoint:
    """One sample of a coverage curve."""

    patterns: int
    coverage: float


def coverage_curve_from_samples(samples: Sequence[tuple[int, float]]) -> list[CoveragePoint]:
    """Convert raw (patterns, coverage) tuples into :class:`CoveragePoint` rows."""
    return [CoveragePoint(patterns, coverage) for patterns, coverage in samples]


def patterns_to_reach(samples: Sequence[tuple[int, float]], target: float) -> int | None:
    """First pattern count at which the coverage curve reaches ``target`` (None if never)."""
    for patterns, coverage in samples:
        if coverage >= target:
            return patterns
    return None


def coverage_plateau_slope(
    samples: Sequence[tuple[int, float]], tail_fraction: float = 0.25
) -> float:
    """Average coverage gain per pattern over the tail of the curve.

    A near-zero slope is the numerical signature of the random-pattern plateau
    that motivates test points and top-up ATPG.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    if len(samples) < 2:
        return 0.0
    start_index = max(0, int(len(samples) * (1 - tail_fraction)) - 1)
    start_patterns, start_cov = samples[start_index]
    end_patterns, end_cov = samples[-1]
    span = end_patterns - start_patterns
    if span <= 0:
        return 0.0
    return (end_cov - start_cov) / span


def random_resistant_faults(fault_list: FaultList) -> list[object]:
    """Faults still undetected after the random phase (the top-up ATPG targets)."""
    return fault_list.undetected()


def detection_summary(fault_list: FaultList) -> dict[str, int | float]:
    """Compact summary used by reports: counts per status plus coverage."""
    return {
        "total": len(fault_list),
        "detected": fault_list.detected_count(),
        "undetected": len(fault_list.with_status(FaultStatus.UNDETECTED)),
        "aborted": len(fault_list.with_status(FaultStatus.ABORTED)),
        "untestable": fault_list.untestable_count(),
        "coverage": fault_list.coverage(),
        "test_efficiency": fault_list.coverage(exclude_untestable=True),
    }


def escape_rate(fault_list: FaultList) -> float:
    """Fraction of faults that would escape this test (1 - coverage)."""
    return 1.0 - fault_list.coverage()
