"""Fault models: single stuck-at and transition-delay faults.

The paper's flow targets stuck-at faults for the coverage numbers in Table 1
(20 K random patterns -> ~93 %, top-up ATPG -> ~97 %) and relies on the
double-capture at-speed scheme to also detect timing (transition) defects.
Both models are represented here.

A fault site is a *pin* of a gate:

* ``pin == OUTPUT_PIN`` (-1): the fault sits on the gate's output stem,
* ``pin >= 0``: the fault sits on that input branch of the gate, i.e. it only
  affects how *this* gate sees the driving net, not the other fanout branches.

Branch faults matter because a stem fault and its branch faults are not
equivalent in the presence of fanout; the classical fault-collapsing rules in
:mod:`repro.faults.collapse` operate on exactly this representation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..netlist.circuit import Circuit

#: Pin index used to denote a gate's output stem.
OUTPUT_PIN = -1


class FaultStatus(enum.Enum):
    """Lifecycle status of a fault during a test-generation / BIST campaign."""

    #: Not yet detected by any simulated pattern.
    UNDETECTED = "undetected"
    #: Detected by at least one pattern.
    DETECTED = "detected"
    #: Proven untestable (no input assignment detects it), e.g. by ATPG.
    UNTESTABLE = "untestable"
    #: ATPG gave up within its backtrack limit; possibly testable.
    ABORTED = "aborted"


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """Single stuck-at fault at a gate pin.

    Attributes
    ----------
    gate:
        Name of the gate owning the faulty pin (for stem faults this is the
        driving gate; the faulted net is then ``gate`` itself).
    pin:
        ``OUTPUT_PIN`` for the output stem, otherwise the input pin index.
    value:
        The stuck value, 0 or 1.
    """

    gate: str
    pin: int
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")
        if self.pin < OUTPUT_PIN:
            raise ValueError("pin must be OUTPUT_PIN or a non-negative input index")

    @property
    def is_stem(self) -> bool:
        """True when the fault is on the gate's output stem."""
        return self.pin == OUTPUT_PIN

    def faulted_net(self, circuit: Circuit) -> str:
        """Name of the net whose value the fault corrupts (as seen by this gate)."""
        if self.is_stem:
            return self.gate
        return circuit.gate(self.gate).inputs[self.pin]

    def __str__(self) -> str:
        location = f"{self.gate}" if self.is_stem else f"{self.gate}.in{self.pin}"
        return f"{location} s-a-{self.value}"


@dataclass(frozen=True, order=True)
class TransitionFault:
    """Transition-delay fault (slow-to-rise / slow-to-fall) at a gate pin.

    ``slow_to_rise`` means the 0->1 transition is too slow: under the
    launch/capture pair the site behaves as if stuck at 0 during the capture
    cycle.  The detection condition therefore reuses the stuck-at machinery:

    * launch pattern sets the site to the initial value (0 for slow-to-rise),
    * capture pattern sets it to the final value **and** detects the
      corresponding stuck-at fault (s-a-0 for slow-to-rise) at the site.
    """

    gate: str
    pin: int
    slow_to_rise: bool

    def __post_init__(self) -> None:
        if self.pin < OUTPUT_PIN:
            raise ValueError("pin must be OUTPUT_PIN or a non-negative input index")

    @property
    def is_stem(self) -> bool:
        """True when the fault is on the gate's output stem."""
        return self.pin == OUTPUT_PIN

    @property
    def initial_value(self) -> int:
        """Value the site must hold in the launch cycle."""
        return 0 if self.slow_to_rise else 1

    @property
    def final_value(self) -> int:
        """Value the site must transition to in the capture cycle."""
        return 1 if self.slow_to_rise else 0

    def equivalent_stuck_at(self) -> StuckAtFault:
        """The stuck-at fault whose detection in the capture cycle implies detection."""
        return StuckAtFault(self.gate, self.pin, self.initial_value)

    def faulted_net(self, circuit: Circuit) -> str:
        """Name of the net whose transition the fault slows."""
        if self.is_stem:
            return self.gate
        return circuit.gate(self.gate).inputs[self.pin]

    def __str__(self) -> str:
        location = f"{self.gate}" if self.is_stem else f"{self.gate}.in{self.pin}"
        kind = "STR" if self.slow_to_rise else "STF"
        return f"{location} {kind}"


Fault = StuckAtFault | TransitionFault
