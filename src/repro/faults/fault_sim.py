"""Pattern-parallel single-fault-propagation (PPSFP) stuck-at fault simulation.

For every block of packed patterns (the block width is a free parameter --
64 / 256 / 1024 patterns per bigint word) the simulator runs one fault-free
simulation, then for each still-undetected fault:

1. computes the faulty value at the fault site (constant for stem faults; a
   re-evaluation of the owning gate for input-branch faults),
2. re-simulates only the fanout cone of the site with that value forced,
3. compares the faulty and fault-free values at the observation nets that lie
   inside the cone -- any differing pattern detects the fault.

Detected faults are dropped from subsequent blocks (classical fault dropping),
which is what makes simulating thousands of random patterns tractable.

Since the compiled-kernel refactor the whole engine runs in *integer ID
space*: good values live in a flat ``list[int]`` indexed by interned net ID,
fault sites are pre-resolved to ``(site ID, opcode, operand IDs)`` records,
and every fanout cone is lowered once into a per-site
:class:`~repro.simulation.kernel.ConePlan` (sorted schedule slices plus the
frontier nets read from the fault-free base).  The name-keyed entry points
(:meth:`FaultSimulator.detection_mask`, :meth:`FaultSimulator.simulate` with
pattern dicts) are thin adapters over the ID path, so ATPG, TPI and the tests
keep their original API.  :meth:`FaultSimulator.simulate_blocks` consumes
pre-packed :class:`~repro.simulation.packed.PatternBlock` streams (e.g. from
``StumpsArchitecture.generate_packed_blocks``) without ever materialising
per-pattern dicts.

The same engine exposes :meth:`FaultSimulator.fault_effect_profile`, which the
paper's fault-simulation-guided test-point insertion uses: instead of asking
"did the effect reach an observation net?" it records *which internal nets*
the effect of each undetected fault reaches, so that observation points can be
placed where they convert the most undetected faults into detected ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import evaluate_packed
from ..simulation.comb_sim import PackedSimulator
from ..simulation.kernel import StrictStimulusError
from ..simulation.numpy_backend import (
    NUMPY_BACKEND,
    PYTHON_BACKEND,
    FaultScanKernel,
    ScanFault,
    numpy_kernel_for,
    plane_to_word,
    resolve_backend,
    resolve_memory_budget_mb,
    scan_kernel_for,
    words_for,
)
from ..simulation.packed import DEFAULT_BLOCK_SIZE, PatternBlock, iter_blocks, mask_for
from .fault_list import FaultList
from .models import StuckAtFault

#: Fault-site kinds pre-resolved into ID space (see ``_fault_spec``).
_SITE_CONST = 0  # output stem or flop D-pin branch: forced constant word
_SITE_GATE = 1  # combinational input-branch: re-evaluate the owning gate


def check_strict_patterns(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    require_complete: bool = False,
    label: str = "pattern",
) -> None:
    """Validate a pattern list against the circuit's stimulus nets.

    Raises :class:`~repro.simulation.kernel.StrictStimulusError` when a
    pattern assigns a net that is not a stimulus net (the classic misspelled
    name, which the packing step would otherwise silently drop to 0) or --
    with ``require_complete`` -- when a stimulus net is missing from a
    pattern (which would otherwise silently read as 0).
    """
    stimulus_nets = circuit.stimulus_nets()
    allowed = set(stimulus_nets)
    for index, pattern in enumerate(patterns):
        unknown = [net for net in pattern if net not in allowed]
        if unknown:
            raise StrictStimulusError(
                f"{label} {index} assigns non-stimulus nets "
                f"{unknown[:5]!r}{'...' if len(unknown) > 5 else ''}"
            )
        if require_complete and len(pattern) < len(allowed):
            missing = [net for net in stimulus_nets if net not in pattern]
            if missing:
                raise StrictStimulusError(
                    f"{label} {index} is missing stimulus nets "
                    f"{missing[:5]!r}{'...' if len(missing) > 5 else ''}"
                )


@dataclass(frozen=True)
class FaultSimShardState:
    """Pickleable description of one fault-simulation shard's compiled state.

    A shard worker reconstructs the full compiled-kernel engine from this
    record alone: the circuit (plain dataclasses all the way down), the
    observation nets, and the *canonical fault ordering* of the campaign.
    Shard tasks then reference faults by index into ``faults``, which keeps
    the merge step (and the pickles) small and makes merged results
    independent of shard order and worker count.
    """

    circuit: Circuit
    observe_nets: tuple[str, ...]
    faults: tuple[StuckAtFault, ...]
    #: Execution backend the shard worker compiles ("python" or "numpy").
    sim_backend: str = PYTHON_BACKEND
    #: Peak scan-memory budget every pooled worker obeys (numpy backend;
    #: ``None`` = unbounded).  Carried in the shard state so a campaign's
    #: budget survives pickling into worker processes.
    sim_memory_budget_mb: Optional[float] = None

    def build_simulator(self) -> "FaultSimulator":
        """Compile a fresh :class:`FaultSimulator` for this shard state."""
        return FaultSimulator(
            self.circuit,
            list(self.observe_nets),
            backend=self.sim_backend,
            memory_budget_mb=self.sim_memory_budget_mb,
        )


@dataclass
class FaultSimulationResult:
    """Outcome of one fault-simulation campaign.

    Attributes
    ----------
    fault_list:
        The (mutated) fault list with detection status updated.
    patterns_simulated:
        Number of patterns simulated.
    coverage_curve:
        List of (patterns simulated so far, coverage) samples, one per block.
    detections_per_pattern:
        Number of *new* fault detections credited to each pattern index.
    """

    fault_list: FaultList
    patterns_simulated: int
    coverage_curve: list[tuple[int, float]] = field(default_factory=list)
    detections_per_pattern: list[int] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Final fault coverage in [0, 1]."""
        return self.fault_list.coverage()


class _NumpyFaultScan:
    """Compiled fault-vectorised scan state for one canonical fault order.

    Thin faults-layer shim over
    :class:`~repro.simulation.numpy_backend.FaultScanKernel`: it translates
    the engine's pre-resolved site records and cone plans into backend
    :class:`~repro.simulation.numpy_backend.ScanFault` descriptions (one per
    fault, positionally -- duplicate faults are legal) and owns the per-width
    bit-plane tables the scans run over.
    """

    def __init__(self, engine: "FaultSimulator", faults: tuple) -> None:
        self.faults = faults
        self.np_kernel = numpy_kernel_for(engine.kernel)

        def build() -> FaultScanKernel:
            scan_faults = []
            for fault in faults:
                spec = engine._fault_spec(fault)
                plan, observed_ids = engine._site_plan(spec[1])
                if spec[0] == _SITE_CONST:
                    scan_faults.append(
                        ScanFault(spec[1], plan, observed_ids, const_value=spec[2])
                    )
                else:
                    _, site_id, value, gate_type, input_ids, pin = spec
                    scan_faults.append(
                        ScanFault(
                            site_id,
                            plan,
                            observed_ids,
                            gate_type=gate_type,
                            operand_ids=input_ids,
                            pin=pin,
                            value=value,
                        )
                    )
            return FaultScanKernel(
                self.np_kernel,
                scan_faults,
                memory_budget_bytes=engine._memory_budget_bytes,
            )

        # The budget is part of the cache key: a cached scan compiled for
        # one budget must not serve an engine configured with another.
        self.scan = scan_kernel_for(
            self.np_kernel,
            (faults, tuple(engine.observe_nets), engine._memory_budget_bytes),
            build,
        )

    def table_for(self, num_words: int):
        """The scan's good-rows + fault-slot-rows table for one width."""
        return self.scan.table_for(num_words)


class FaultSimulator:
    """PPSFP stuck-at fault simulator with fault dropping (compiled-kernel engine).

    ``backend`` selects how the campaign-level loops execute: ``"python"``
    (default; per-fault bigint cone resimulation, the oracle) or ``"numpy"``
    (the fault-vectorised bit-plane scan of
    :mod:`repro.simulation.numpy_backend`).  Detection masks, statuses,
    first-detection indices and coverage curves are bit-identical across
    backends; only throughput differs.
    """

    def __init__(
        self,
        circuit: Circuit,
        observe_nets: Optional[Sequence[str]] = None,
        backend: str = PYTHON_BACKEND,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        self.circuit = circuit
        self.backend = resolve_backend(backend)
        #: Peak scan-memory budget in MB (numpy backend; ``None`` =
        #: unbounded).  Bounds the vectorised scan's slot arena plus
        #: per-block workspaces -- see ``FaultScanKernel``.
        self.memory_budget_mb = memory_budget_mb
        self._memory_budget_bytes = resolve_memory_budget_mb(memory_budget_mb)
        self.simulator = PackedSimulator(
            circuit, backend=backend, memory_budget_mb=memory_budget_mb
        )
        self.kernel = self.simulator.kernel
        self.observe_nets = (
            list(observe_nets) if observe_nets is not None else circuit.observation_nets()
        )
        self._observe_set = set(self.observe_nets)
        # Cache of (ConePlan, observed IDs inside the plan), keyed by site ID.
        self._site_cache: dict[int, tuple[object, tuple[int, ...]]] = {}
        # Cache of fault -> pre-resolved site record, keyed by the fault itself.
        self._fault_specs: dict[StuckAtFault, tuple] = {}
        # Reusable good-value table (one slot per interned net).
        self._good = self.kernel.make_table()
        # Most-recently compiled numpy scan state: (fault tuple, scan).
        self._np_scan: Optional[tuple[tuple, _NumpyFaultScan]] = None
        #: Aggregate count of gate (re-)evaluations, for throughput reporting.
        self.gate_evals = 0

    # ------------------------------------------------------------------ #
    # Observation management (used by test-point insertion)
    # ------------------------------------------------------------------ #
    def add_observation_net(self, net: str) -> None:
        """Add an observation point; subsequent simulations observe it."""
        if net not in self.circuit.gates:
            raise KeyError(f"unknown net {net!r}")
        if net not in self._observe_set:
            self.observe_nets.append(net)
            self._observe_set.add(net)
            self._site_cache.clear()
            self._np_scan = None

    # ------------------------------------------------------------------ #
    # Fault injection helpers (ID space)
    # ------------------------------------------------------------------ #
    def _fault_spec(self, fault: StuckAtFault) -> tuple:
        """Pre-resolved site record: how to compute (site ID, faulty word)."""
        spec = self._fault_specs.get(fault)
        if spec is None:
            net_id = self.kernel.net_id
            if fault.is_stem:
                spec = (_SITE_CONST, net_id[fault.gate], fault.value)
            else:
                gate = self.circuit.gate(fault.gate)
                if gate.is_flop:
                    # A branch fault on a flop's D pin is observed at the D net
                    # itself in the scan view; represent it as a constant
                    # override on the D net (see the pre-kernel engine).
                    spec = (_SITE_CONST, net_id[gate.inputs[fault.pin]], fault.value)
                else:
                    spec = (
                        _SITE_GATE,
                        net_id[fault.gate],
                        fault.value,
                        gate.gate_type,
                        tuple(net_id[n] for n in gate.inputs),
                        fault.pin,
                    )
            self._fault_specs[fault] = spec
        return spec

    def _faulty_site_value_ids(
        self, fault: StuckAtFault, good: Sequence[int], mask: int
    ) -> tuple[int, int]:
        """Return (site net ID, packed faulty word) for ``fault``."""
        spec = self._fault_spec(fault)
        if spec[0] == _SITE_CONST:
            return spec[1], (mask if spec[2] else 0)
        _, site_id, value, gate_type, input_ids, pin = spec
        forced = mask if value else 0
        inputs = [
            forced if index == pin else good[nid]
            for index, nid in enumerate(input_ids)
        ]
        return site_id, evaluate_packed(gate_type, inputs, mask)

    def _site_plan(self, site_id: int) -> tuple[object, tuple[int, ...]]:
        """Cone plan plus the observed net IDs it recomputes (or forces)."""
        cached = self._site_cache.get(site_id)
        if cached is None:
            plan = self.kernel.cone_plan(site_id)
            computed = set(plan.computed)
            computed.add(site_id)
            net_id = self.kernel.net_id
            observed_ids = tuple(
                net_id[net]
                for net in self.observe_nets
                if net_id[net] in computed
            )
            cached = (plan, observed_ids)
            self._site_cache[site_id] = cached
        return cached

    def _detection_ids(
        self, fault: StuckAtFault, good: list[int], mask: int
    ) -> int:
        """Detection mask computed entirely in ID space (the hot path)."""
        site_id, faulty_word = self._faulty_site_value_ids(fault, good, mask)
        if faulty_word == good[site_id]:
            return 0
        plan, observed_ids = self._site_plan(site_id)
        if not observed_ids:
            return 0
        scratch = self.kernel.resimulate_plan(plan, good, faulty_word, mask)
        self.gate_evals += len(plan.ops)
        detection = 0
        for nid in observed_ids:
            detection |= scratch[nid] ^ good[nid]
        return detection & mask

    # ------------------------------------------------------------------ #
    # Name-keyed adapters (public API unchanged from the pre-kernel engine)
    # ------------------------------------------------------------------ #
    def detection_mask_ids(
        self, fault: StuckAtFault, good_values: list[int], num_patterns: int
    ) -> int:
        """Detection mask against an integer-indexed good-value table."""
        return self._detection_ids(fault, good_values, mask_for(num_patterns))

    def detection_mask(
        self,
        fault: StuckAtFault,
        good_values: Mapping[str, int],
        num_patterns: int,
    ) -> int:
        """Packed mask of patterns (within the block) that detect ``fault``.

        ``good_values`` is a name-keyed fault-free block result (what
        :meth:`PackedSimulator.simulate_block` returns); it is interned into
        the ID table once per call, so prefer :meth:`detection_mask_ids` in
        loops over many faults.  Keys that are not circuit nets are ignored;
        a circuit net missing from the mapping raises ``KeyError`` (fail
        fast, never a silent all-zero default).
        """
        mask = mask_for(num_patterns)
        table = self._table_from_mapping(good_values)
        return self._detection_ids(fault, table, mask)

    def _table_from_mapping(self, good_values: Mapping[str, int]) -> list[int]:
        return [good_values[name] for name in self.kernel.net_names]

    # ------------------------------------------------------------------ #
    # Campaign-level simulation
    # ------------------------------------------------------------------ #
    def _scan_block(
        self,
        active: list[StuckAtFault],
        good: list[int],
        mask: int,
        drop_detected: bool = True,
    ) -> tuple[list[tuple[StuckAtFault, int]], list[StuckAtFault]]:
        """One PPSFP pass of all ``active`` faults over a simulated block.

        Returns ``(detections, still_active)`` where each detection is
        ``(fault, first detecting bit within the block)``.  This is the one
        place the per-block detection logic lives: the serial campaign
        (:meth:`simulate_blocks`) and the sharded scan
        (:meth:`first_detections`) both run through it, so the serial oracle
        and the shard primitive cannot drift apart.
        """
        detections: list[tuple[StuckAtFault, int]] = []
        still_active: list[StuckAtFault] = []
        for fault in active:
            detection = self._detection_ids(fault, good, mask)
            if detection:
                first_bit = (detection & -detection).bit_length() - 1
                detections.append((fault, first_bit))
                if not drop_detected:
                    still_active.append(fault)
            else:
                still_active.append(fault)
        return detections, still_active

    def _numpy_scan(self, faults: tuple) -> _NumpyFaultScan:
        """Compiled vectorised scan for a canonical fault order (1-deep cache).

        The per-site cone lowerings are cached on the shared numpy kernel, so
        recompiling for a different fault order (the ATPG top-up after the
        random phase) only pays the cheap per-fault assembly.
        """
        cached = self._np_scan
        if cached is not None and cached[0] == faults:
            return cached[1]
        scan = _NumpyFaultScan(self, faults)
        self._np_scan = (faults, scan)
        return scan

    def simulate(
        self,
        fault_list: FaultList,
        patterns: Sequence[Mapping[str, int]],
        block_size: int = DEFAULT_BLOCK_SIZE,
        drop_detected: bool = True,
        pattern_offset: int = 0,
        strict: bool = False,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``fault_list``.

        Parameters
        ----------
        fault_list:
            Faults to simulate; their status is updated in place.
        patterns:
            Sequence of stimulus dicts (primary inputs and flop outputs).
        block_size:
            Patterns per packed block (wider blocks amortise the interpreter
            loop over more patterns; 256 is a good throughput choice).
        drop_detected:
            Stop simulating a fault once it has been detected (the paper's BIST
            coverage numbers use dropping; N-detect studies disable it).
        pattern_offset:
            Index of the first pattern within the overall campaign, used so
            that first-detection indices stay globally meaningful when random
            and top-up phases are simulated in separate calls.
        strict:
            When true, any pattern containing a net that is not a stimulus net
            (e.g. a misspelled name, which the packing step would otherwise
            silently drop to 0) raises
            :class:`~repro.simulation.kernel.StrictStimulusError`.
        """
        if strict:
            check_strict_patterns(self.circuit, patterns)
        stimulus_nets = self.circuit.stimulus_nets()
        blocks = iter_blocks(patterns, block_size=block_size, nets=stimulus_nets)
        return self.simulate_blocks(
            fault_list,
            blocks,
            drop_detected=drop_detected,
            pattern_offset=pattern_offset,
        )

    def simulate_blocks(
        self,
        fault_list: FaultList,
        blocks: Iterable[PatternBlock],
        drop_detected: bool = True,
        pattern_offset: int = 0,
    ) -> FaultSimulationResult:
        """Fault-simulate a stream of pre-packed pattern blocks.

        This is the streaming entry point: blocks may come from
        ``iter_blocks`` over a pattern list or directly from
        ``StumpsArchitecture.generate_packed_blocks`` without any per-pattern
        dict ever being built.  Scan cells / stimulus nets missing from a
        block's assignments default to the all-zero word, exactly as in the
        pattern-list path.
        """
        if self.backend == NUMPY_BACKEND:
            return self._simulate_blocks_numpy(
                fault_list, blocks, drop_detected, pattern_offset
            )
        result = FaultSimulationResult(fault_list, 0)
        active = list(fault_list.undetected())
        simulated = 0
        kernel = self.kernel
        good = self._good
        for block in blocks:
            num = block.num_patterns
            mask = mask_for(num)
            kernel.set_stimulus(good, block.assignments, mask)
            kernel.evaluate(good, mask)
            self.gate_evals += kernel.num_gates
            result.detections_per_pattern.extend([0] * num)
            detections, active = self._scan_block(active, good, mask, drop_detected)
            for fault, first_bit in detections:
                fault_list.mark_detected(fault, pattern_offset + simulated + first_bit)
                result.detections_per_pattern[simulated + first_bit] += 1
            simulated += num
            result.coverage_curve.append((pattern_offset + simulated, fault_list.coverage()))
        result.patterns_simulated = simulated
        return result

    def _np_block_pass(
        self, scan_state: _NumpyFaultScan, block: PatternBlock, active: list[int]
    ) -> tuple[dict, int]:
        """One numpy-backend block: load, forward-evaluate, scan the actives.

        The single home of the per-block numpy execution, shared by the
        serial campaign (:meth:`_simulate_blocks_numpy`) and the shard
        primitive (:meth:`_first_detections_numpy`) exactly like
        :meth:`_scan_block` is for the python backend -- so oracle and shard
        primitive cannot drift apart.  Returns ``(detection rows by
        canonical position, block pattern count)``.  The fault-free pass
        always runs (the python backend does too, and its gate-evaluation
        accounting must match); the fault scan is skipped when nothing is
        active.
        """
        num = block.num_patterns
        mask = mask_for(num)
        num_words = words_for(num)
        scan = scan_state.scan
        np_kernel = scan_state.np_kernel
        table = scan.table_for(num_words)
        mask_plane = np_kernel.mask_plane(mask, num_words)
        np_kernel.set_stimulus(table, block.assignments, mask, num_words)
        np_kernel.evaluate(table, mask_plane)
        self.gate_evals += self.kernel.num_gates
        if not active:
            return {}, num
        rows, resim_evals = scan.scan_positions(table, mask_plane, num_words, active)
        self.gate_evals += resim_evals
        return rows, num

    def _simulate_blocks_numpy(
        self,
        fault_list: FaultList,
        blocks: Iterable[PatternBlock],
        drop_detected: bool,
        pattern_offset: int,
    ) -> FaultSimulationResult:
        """The ``"numpy"`` backend form of :meth:`simulate_blocks`.

        Identical bookkeeping, but every block runs through
        :meth:`_np_block_pass` (level-batched bit-plane forward simulation
        plus the fault-vectorised union-cone scan) instead of per-fault
        bigint cone resimulation.  The active set is tracked as positions
        into the compiled canonical fault order.
        """
        result = FaultSimulationResult(fault_list, 0)
        faults = tuple(fault_list.undetected())
        scan_state = self._numpy_scan(faults)
        scan = scan_state.scan
        active = list(range(len(faults)))
        scan.ensure_live(active)
        simulated = 0
        for block in blocks:
            rows, num = self._np_block_pass(scan_state, block, active)
            result.detections_per_pattern.extend([0] * num)
            still_active: list[int] = []
            for position in active:
                row = rows.get(position)
                if row is None:
                    still_active.append(position)
                    continue
                word = plane_to_word(row)
                first_bit = (word & -word).bit_length() - 1
                fault_list.mark_detected(
                    faults[position], pattern_offset + simulated + first_bit
                )
                result.detections_per_pattern[simulated + first_bit] += 1
                if not drop_detected:
                    still_active.append(position)
            active = still_active
            scan.maybe_prune(active)
            simulated += num
            result.coverage_curve.append(
                (pattern_offset + simulated, fault_list.coverage())
            )
        result.patterns_simulated = simulated
        return result

    # ------------------------------------------------------------------ #
    # Sharded-campaign primitives
    # ------------------------------------------------------------------ #
    def shard_state(self, faults: Sequence[StuckAtFault]) -> FaultSimShardState:
        """Pickleable shard state for campaign fan-out over ``faults``.

        The returned record carries everything a worker process needs to
        rebuild this simulator bit for bit (circuit, observation nets,
        execution backend) plus the canonical fault ordering that shard
        tasks index into.
        """
        return FaultSimShardState(
            circuit=self.circuit,
            observe_nets=tuple(self.observe_nets),
            faults=tuple(faults),
            sim_backend=self.backend,
            sim_memory_budget_mb=self.memory_budget_mb,
        )

    def first_detections(
        self,
        faults: Sequence[StuckAtFault],
        blocks: Iterable[tuple[int, PatternBlock]],
    ) -> dict[StuckAtFault, int]:
        """First-detection scan: the shard primitive of the campaign runner.

        ``blocks`` is a stream of ``(global pattern offset, PatternBlock)``
        pairs.  For every fault the *global index of the first detecting
        pattern* within the stream is returned (faults never detected are
        absent).  Detection of one fault never depends on any other fault --
        fault dropping is a pure optimisation here -- so partitioning faults
        and/or pattern blocks across shards and min-merging the returned
        indices reproduces the serial result bit for bit.
        """
        if self.backend == NUMPY_BACKEND:
            return self._first_detections_numpy(faults, blocks)
        detections: dict[StuckAtFault, int] = {}
        active = list(faults)
        kernel = self.kernel
        good = self._good
        for offset, block in blocks:
            if not active:
                break
            num = block.num_patterns
            mask = mask_for(num)
            kernel.set_stimulus(good, block.assignments, mask)
            kernel.evaluate(good, mask)
            self.gate_evals += kernel.num_gates
            found, active = self._scan_block(active, good, mask)
            for fault, first_bit in found:
                detections[fault] = offset + first_bit
        return detections

    def _first_detections_numpy(
        self,
        faults: Sequence[StuckAtFault],
        blocks: Iterable[tuple[int, PatternBlock]],
    ) -> dict[StuckAtFault, int]:
        """The ``"numpy"`` backend form of :meth:`first_detections`."""
        detections: dict[StuckAtFault, int] = {}
        fault_order = tuple(faults)
        scan_state = self._numpy_scan(fault_order)
        scan = scan_state.scan
        active = list(range(len(fault_order)))
        scan.ensure_live(active)
        for offset, block in blocks:
            if not active:
                break
            rows, _num = self._np_block_pass(scan_state, block, active)
            still_active: list[int] = []
            for position in active:
                row = rows.get(position)
                if row is None:
                    still_active.append(position)
                    continue
                word = plane_to_word(row)
                detections[fault_order[position]] = (
                    offset + (word & -word).bit_length() - 1
                )
            active = still_active
            scan.maybe_prune(active)
        return detections

    def detects(self, pattern: Mapping[str, int], fault: StuckAtFault) -> bool:
        """True when the single ``pattern`` detects ``fault`` (used to verify ATPG)."""
        kernel = self.kernel
        good = self._good
        stimulus = {
            net: (1 if pattern.get(net, 0) else 0)
            for net in self.circuit.stimulus_nets()
        }
        kernel.set_stimulus(good, stimulus, 1)
        kernel.evaluate(good, 1)
        return bool(self._detection_ids(fault, good, 1))

    # ------------------------------------------------------------------ #
    # Fault-effect profiling (drives the paper's test-point insertion)
    # ------------------------------------------------------------------ #
    def fault_effect_profile(
        self,
        faults: Iterable[StuckAtFault],
        patterns: Sequence[Mapping[str, int]],
        candidate_nets: Optional[Sequence[str]] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> dict[str, dict[StuckAtFault, int]]:
        """Where do the effects of (undetected) faults travel?

        For every candidate net, count per fault in how many of the given
        patterns the fault effect is visible at that net.  The test-point
        insertion engine turns this into a set-cover problem: pick the nets
        that expose the most undetected faults.

        Parameters
        ----------
        faults:
            Faults to profile (typically the random-resistant ones).
        patterns:
            Sample of patterns (typically a slice of the random-pattern set).
        candidate_nets:
            Nets eligible to become observation points; defaults to every
            combinational net that is not already observed.

        Returns
        -------
        dict
            Mapping candidate net -> {fault: number of patterns whose effect
            reaches the net}.  Nets never reached by any fault are omitted.
        """
        if candidate_nets is None:
            candidate_nets = [
                gate.name
                for gate in self.circuit.combinational_gates()
                if gate.name not in self._observe_set
            ]
        kernel = self.kernel
        net_id = kernel.net_id
        is_candidate = bytearray(kernel.num_nets)
        for net in candidate_nets:
            is_candidate[net_id[net]] = 1
        net_names = kernel.net_names
        profile: dict[str, dict[StuckAtFault, int]] = {}
        fault_seq = list(faults)
        stimulus_nets = self.circuit.stimulus_nets()
        good = self._good
        for block in iter_blocks(patterns, block_size=block_size, nets=stimulus_nets):
            num = block.num_patterns
            mask = mask_for(num)
            kernel.set_stimulus(good, block.assignments, mask)
            kernel.evaluate(good, mask)
            self.gate_evals += kernel.num_gates
            for fault in fault_seq:
                site_id, faulty_word = self._faulty_site_value_ids(fault, good, mask)
                if faulty_word == good[site_id]:
                    continue
                plan, _ = self._site_plan(site_id)
                scratch = kernel.resimulate_plan(plan, good, faulty_word, mask)
                self.gate_evals += len(plan.ops)
                # scratch holds the forced site word too, so the site and the
                # recomputed cone nets share one accumulation loop.
                for nid in (*plan.computed, site_id):
                    if not is_candidate[nid]:
                        continue
                    diff = (scratch[nid] ^ good[nid]) & mask
                    if diff:
                        bucket = profile.setdefault(net_names[nid], {})
                        bucket[fault] = bucket.get(fault, 0) + diff.bit_count()
        return profile
