"""Pattern-parallel single-fault-propagation (PPSFP) stuck-at fault simulation.

For every block of up to 64 packed patterns the simulator runs one fault-free
simulation, then for each still-undetected fault:

1. computes the faulty value at the fault site (constant for stem faults; a
   re-evaluation of the owning gate for input-branch faults),
2. re-simulates only the fanout cone of the site with that value forced,
3. compares the faulty and fault-free values at the observation nets that lie
   inside the cone -- any differing pattern detects the fault.

Detected faults are dropped from subsequent blocks (classical fault dropping),
which is what makes simulating thousands of random patterns tractable.

The same engine exposes :meth:`FaultSimulator.fault_effect_profile`, which the
paper's fault-simulation-guided test-point insertion uses: instead of asking
"did the effect reach an observation net?" it records *which internal nets*
the effect of each undetected fault reaches, so that observation points can be
placed where they convert the most undetected faults into detected ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import evaluate_packed
from ..simulation.comb_sim import PackedSimulator
from ..simulation.packed import DEFAULT_BLOCK_SIZE, iter_blocks, mask_for
from .fault_list import FaultList
from .models import StuckAtFault


@dataclass
class FaultSimulationResult:
    """Outcome of one fault-simulation campaign.

    Attributes
    ----------
    fault_list:
        The (mutated) fault list with detection status updated.
    patterns_simulated:
        Number of patterns simulated.
    coverage_curve:
        List of (patterns simulated so far, coverage) samples, one per block.
    detections_per_pattern:
        Number of *new* fault detections credited to each pattern index.
    """

    fault_list: FaultList
    patterns_simulated: int
    coverage_curve: list[tuple[int, float]] = field(default_factory=list)
    detections_per_pattern: list[int] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Final fault coverage in [0, 1]."""
        return self.fault_list.coverage()


class FaultSimulator:
    """PPSFP stuck-at fault simulator with fault dropping."""

    def __init__(
        self,
        circuit: Circuit,
        observe_nets: Optional[Sequence[str]] = None,
    ) -> None:
        self.circuit = circuit
        self.simulator = PackedSimulator(circuit)
        self.observe_nets = (
            list(observe_nets) if observe_nets is not None else circuit.observation_nets()
        )
        self._observe_set = set(self.observe_nets)
        # Cache of fanout cones and their observed subsets, keyed by site net.
        self._cone_cache: dict[str, tuple[set[str], list[str]]] = {}

    # ------------------------------------------------------------------ #
    # Observation management (used by test-point insertion)
    # ------------------------------------------------------------------ #
    def add_observation_net(self, net: str) -> None:
        """Add an observation point; subsequent simulations observe it."""
        if net not in self.circuit.gates:
            raise KeyError(f"unknown net {net!r}")
        if net not in self._observe_set:
            self.observe_nets.append(net)
            self._observe_set.add(net)
            self._cone_cache.clear()

    # ------------------------------------------------------------------ #
    # Fault injection helpers
    # ------------------------------------------------------------------ #
    def _cone_and_observed(self, site_net: str) -> tuple[set[str], list[str]]:
        cached = self._cone_cache.get(site_net)
        if cached is None:
            cone = self.circuit.fanout_cone(site_net)
            observed = [net for net in self.observe_nets if net in cone]
            cached = (cone, observed)
            self._cone_cache[site_net] = cached
        return cached

    def _faulty_site_value(
        self, fault: StuckAtFault, good_values: Mapping[str, int], mask: int
    ) -> tuple[str, int]:
        """Return (net to override, packed faulty value) for ``fault``."""
        if fault.is_stem:
            return fault.gate, (mask if fault.value else 0)
        gate = self.circuit.gate(fault.gate)
        inputs = []
        for pin, net in enumerate(gate.inputs):
            if pin == fault.pin:
                inputs.append(mask if fault.value else 0)
            else:
                inputs.append(good_values[net])
        if gate.is_flop:
            # A branch fault on a flop's D pin is observed at the flop's D net
            # itself in the scan view; the faulty "output" is simply the forced
            # value as seen by the capturing flop.  Represent it as a stem-like
            # override on the D net restricted to this flop -- since the D net
            # may fan out elsewhere, we conservatively treat the fault as
            # detected when the forced value differs from the good D value.
            return gate.inputs[fault.pin], (mask if fault.value else 0)
        faulty_output = evaluate_packed(gate.gate_type, inputs, mask)
        return fault.gate, faulty_output

    def detection_mask(
        self,
        fault: StuckAtFault,
        good_values: Mapping[str, int],
        num_patterns: int,
    ) -> int:
        """Packed mask of patterns (within the block) that detect ``fault``."""
        mask = mask_for(num_patterns)
        override_net, faulty_value = self._faulty_site_value(fault, good_values, mask)
        if faulty_value == good_values[override_net]:
            return 0
        cone, observed = self._cone_and_observed(override_net)
        if not observed:
            return 0
        faulty = self.simulator.resimulate_cone(
            good_values, {override_net: faulty_value}, cone, num_patterns
        )
        detection = 0
        for net in observed:
            detection |= (faulty.get(net, good_values[net]) ^ good_values[net])
        return detection & mask

    # ------------------------------------------------------------------ #
    # Campaign-level simulation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        fault_list: FaultList,
        patterns: Sequence[Mapping[str, int]],
        block_size: int = DEFAULT_BLOCK_SIZE,
        drop_detected: bool = True,
        pattern_offset: int = 0,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``fault_list``.

        Parameters
        ----------
        fault_list:
            Faults to simulate; their status is updated in place.
        patterns:
            Sequence of stimulus dicts (primary inputs and flop outputs).
        block_size:
            Patterns per packed block.
        drop_detected:
            Stop simulating a fault once it has been detected (the paper's BIST
            coverage numbers use dropping; N-detect studies disable it).
        pattern_offset:
            Index of the first pattern within the overall campaign, used so
            that first-detection indices stay globally meaningful when random
            and top-up phases are simulated in separate calls.
        """
        result = FaultSimulationResult(fault_list, len(patterns))
        result.detections_per_pattern = [0] * len(patterns)
        active = list(fault_list.undetected())
        simulated = 0
        stimulus_nets = self.circuit.stimulus_nets()
        for block in iter_blocks(patterns, block_size=block_size, nets=stimulus_nets):
            good = self.simulator.simulate_block(block.assignments, block.num_patterns)
            still_active: list[StuckAtFault] = []
            for fault in active:
                detection = self.detection_mask(fault, good, block.num_patterns)
                if detection:
                    first_bit = (detection & -detection).bit_length() - 1
                    pattern_index = pattern_offset + simulated + first_bit
                    fault_list.mark_detected(fault, pattern_index)
                    result.detections_per_pattern[simulated + first_bit] += 1
                    if not drop_detected:
                        still_active.append(fault)
                else:
                    still_active.append(fault)
            active = still_active
            simulated += block.num_patterns
            result.coverage_curve.append((pattern_offset + simulated, fault_list.coverage()))
        return result

    def detects(self, pattern: Mapping[str, int], fault: StuckAtFault) -> bool:
        """True when the single ``pattern`` detects ``fault`` (used to verify ATPG)."""
        good = self.simulator.simulate_block(
            {net: (1 if pattern.get(net, 0) else 0) for net in self.circuit.stimulus_nets()}, 1
        )
        return bool(self.detection_mask(fault, good, 1))

    # ------------------------------------------------------------------ #
    # Fault-effect profiling (drives the paper's test-point insertion)
    # ------------------------------------------------------------------ #
    def fault_effect_profile(
        self,
        faults: Iterable[StuckAtFault],
        patterns: Sequence[Mapping[str, int]],
        candidate_nets: Optional[Sequence[str]] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> dict[str, dict[StuckAtFault, int]]:
        """Where do the effects of (undetected) faults travel?

        For every candidate net, count per fault in how many of the given
        patterns the fault effect is visible at that net.  The test-point
        insertion engine turns this into a set-cover problem: pick the nets
        that expose the most undetected faults.

        Parameters
        ----------
        faults:
            Faults to profile (typically the random-resistant ones).
        patterns:
            Sample of patterns (typically a slice of the random-pattern set).
        candidate_nets:
            Nets eligible to become observation points; defaults to every
            combinational net that is not already observed.

        Returns
        -------
        dict
            Mapping candidate net -> {fault: number of patterns whose effect
            reaches the net}.  Nets never reached by any fault are omitted.
        """
        if candidate_nets is None:
            candidate_nets = [
                gate.name
                for gate in self.circuit.combinational_gates()
                if gate.name not in self._observe_set
            ]
        candidate_set = set(candidate_nets)
        profile: dict[str, dict[StuckAtFault, int]] = {}
        fault_seq = list(faults)
        stimulus_nets = self.circuit.stimulus_nets()
        for block in iter_blocks(patterns, block_size=block_size, nets=stimulus_nets):
            good = self.simulator.simulate_block(block.assignments, block.num_patterns)
            mask = mask_for(block.num_patterns)
            for fault in fault_seq:
                override_net, faulty_value = self._faulty_site_value(fault, good, mask)
                if faulty_value == good[override_net]:
                    continue
                cone, _ = self._cone_and_observed(override_net)
                faulty = self.simulator.resimulate_cone(
                    good, {override_net: faulty_value}, cone, block.num_patterns
                )
                for net in cone:
                    if net not in candidate_set:
                        continue
                    diff = (faulty.get(net, good[net]) ^ good[net]) & mask
                    if diff:
                        profile.setdefault(net, {})
                        profile[net][fault] = profile[net].get(fault, 0) + bin(diff).count("1")
        return profile
