"""Structural equivalence fault collapsing.

Commercial tools report coverage over the *collapsed* fault list; the paper's
93-97 % numbers are of that kind.  This module implements the classical
structural equivalence rules:

* for an AND/NAND gate, s-a-0 at any input is equivalent to s-a-0 (AND) or
  s-a-1 (NAND) at the output,
* for an OR/NOR gate, s-a-1 at any input is equivalent to s-a-1 (OR) or
  s-a-0 (NOR) at the output,
* for NOT/BUF, each input fault is equivalent to the complementary/same
  output fault,
* on fanout-free nets, the branch fault is equivalent to the stem fault
  (already handled by not enumerating such branches).

Each equivalence class keeps one representative (the fault closest to the
primary inputs, which is the conventional choice); the mapping from every
fault to its representative is retained so detection credit can be shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from .fault_list import FaultList, enumerate_stuck_at_faults
from .models import OUTPUT_PIN, StuckAtFault


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def add(self, item: object) -> None:
        if item not in self._parent:
            self._parent[item] = item

    def find(self, item: object) -> object:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def classes(self) -> dict[object, list[object]]:
        groups: dict[object, list[object]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), []).append(item)
        return groups


@dataclass
class CollapsedFaults:
    """Result of equivalence collapsing.

    Attributes
    ----------
    representatives:
        One fault per equivalence class (the collapsed fault list).
    representative_of:
        Mapping from every original fault to its class representative.
    classes:
        Mapping representative -> all members of its class.
    """

    representatives: list[StuckAtFault]
    representative_of: dict[StuckAtFault, StuckAtFault]
    classes: dict[StuckAtFault, list[StuckAtFault]]

    @property
    def collapse_ratio(self) -> float:
        """|collapsed| / |original| (typically around 0.5-0.7 for random logic)."""
        total = len(self.representative_of)
        if total == 0:
            return 1.0
        return len(self.representatives) / total

    def to_fault_list(self) -> FaultList:
        """Fresh :class:`FaultList` over the representatives."""
        return FaultList(self.representatives)


def _input_output_equivalences(
    gate_type: GateType, gate_name: str, num_inputs: int
) -> list[tuple[StuckAtFault, StuckAtFault]]:
    """Equivalence pairs (input-pin fault, output-stem fault) for one gate."""
    pairs: list[tuple[StuckAtFault, StuckAtFault]] = []
    if gate_type in (GateType.AND, GateType.NAND):
        controlled = 0 if gate_type is GateType.AND else 1
        for pin in range(num_inputs):
            pairs.append(
                (StuckAtFault(gate_name, pin, 0), StuckAtFault(gate_name, OUTPUT_PIN, controlled))
            )
    elif gate_type in (GateType.OR, GateType.NOR):
        controlled = 1 if gate_type is GateType.OR else 0
        for pin in range(num_inputs):
            pairs.append(
                (StuckAtFault(gate_name, pin, 1), StuckAtFault(gate_name, OUTPUT_PIN, controlled))
            )
    elif gate_type is GateType.NOT:
        pairs.append((StuckAtFault(gate_name, 0, 0), StuckAtFault(gate_name, OUTPUT_PIN, 1)))
        pairs.append((StuckAtFault(gate_name, 0, 1), StuckAtFault(gate_name, OUTPUT_PIN, 0)))
    elif gate_type in (GateType.BUF, GateType.DFF):
        pairs.append((StuckAtFault(gate_name, 0, 0), StuckAtFault(gate_name, OUTPUT_PIN, 0)))
        pairs.append((StuckAtFault(gate_name, 0, 1), StuckAtFault(gate_name, OUTPUT_PIN, 1)))
    return pairs


def collapse_stuck_at(
    circuit: Circuit, faults: list[StuckAtFault] | None = None
) -> CollapsedFaults:
    """Equivalence-collapse the stuck-at fault universe of ``circuit``.

    Parameters
    ----------
    circuit:
        The netlist.
    faults:
        Optional explicit fault universe; defaults to
        :func:`~repro.faults.fault_list.enumerate_stuck_at_faults`.

    Notes
    -----
    Only *local* gate equivalences plus the single-fanout stem/branch identity
    are applied (the textbook structural collapsing).  Dominance collapsing is
    deliberately not applied because dominance does not preserve detection
    credit under arbitrary pattern sets.
    """
    if faults is None:
        faults = enumerate_stuck_at_faults(circuit)
    fault_set = set(faults)
    uf = _UnionFind()
    for fault in faults:
        uf.add(fault)

    fanout = circuit.fanout_map()
    for gate in circuit:
        pairs = _input_output_equivalences(gate.gate_type, gate.name, len(gate.inputs))
        for branch_fault, stem_equiv in pairs:
            if stem_equiv not in fault_set:
                continue
            # The equivalence links a fault on this gate's input pin to the
            # fault on this gate's *output* stem.
            if branch_fault in fault_set:
                uf.union(stem_equiv, branch_fault)
            # On a fanout-free input net the branch fault is identical to the
            # driving stem fault, so the gate-local equivalence extends to it
            # even when the branch fault itself is not enumerated.
            net = gate.inputs[branch_fault.pin]
            if len(fanout.get(net, ())) == 1:
                driving_stem = StuckAtFault(net, OUTPUT_PIN, branch_fault.value)
                if driving_stem in fault_set:
                    uf.union(stem_equiv, driving_stem)
        # Fanout-free nets: when branch faults *are* enumerated explicitly,
        # also merge them with the driving stem fault directly.
        for pin, net in enumerate(gate.inputs):
            if len(fanout.get(net, ())) == 1:
                for value in (0, 1):
                    branch = StuckAtFault(gate.name, pin, value)
                    stem = StuckAtFault(net, OUTPUT_PIN, value)
                    if branch in fault_set and stem in fault_set:
                        uf.union(stem, branch)

    classes_raw = uf.classes()
    # Choose a deterministic representative per class: prefer stem faults at
    # the lowest circuit level (closest to the inputs), ties broken by name.
    levels = circuit.levels()

    def representative_key(fault: StuckAtFault) -> tuple:
        return (levels.get(fault.gate, 0), 0 if fault.is_stem else 1, fault.gate, fault.pin, fault.value)

    representative_of: dict[StuckAtFault, StuckAtFault] = {}
    classes: dict[StuckAtFault, list[StuckAtFault]] = {}
    representatives: list[StuckAtFault] = []
    for members in classes_raw.values():
        rep = min(members, key=representative_key)
        representatives.append(rep)
        classes[rep] = sorted(members, key=representative_key)
        for member in members:
            representative_of[member] = rep
    representatives.sort(key=representative_key)
    return CollapsedFaults(representatives, representative_of, classes)
