"""Transition-delay fault simulation for the double-capture (launch-on-capture) scheme.

The at-speed value of the paper's scheme is that the *last shift pulse and the
first capture pulse* create transitions at scan flip-flop outputs, and the
*second capture pulse* samples the response one functional period later
(Fig. 2).  In fault-model terms that is launch-on-capture transition testing:

* launch pattern ``V1`` = scan-loaded flop state + primary-input values,
* capture pattern ``V2`` = the state after the first capture pulse (same PIs),
* a slow-to-rise fault at net *n* is detected by the pair when *n* is 0 under
  ``V1``, 1 under ``V2``, and the corresponding stuck-at-0 fault at *n* is
  detected (observable) under ``V2``.

This module derives ``V2`` from ``V1`` for an arbitrary per-domain capture
order (so the staggered multi-domain capture of Fig. 2 is modelled faithfully)
and reuses the stuck-at PPSFP engine for the observability part.

Like the stuck-at engine, the simulator runs on the compiled integer-indexed
kernel: launch/capture good values are flat ``list[int]`` tables, fault sites
are pre-resolved to net IDs, and observability checks go through
:meth:`~repro.faults.fault_sim.FaultSimulator.detection_mask_ids` so no
name-keyed dict is built per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..simulation.comb_sim import PackedSimulator
from ..simulation.numpy_backend import (
    NUMPY_BACKEND,
    PYTHON_BACKEND,
    np as _np,
    plane_to_word,
    width_cache,
    words_for,
)
from ..simulation.packed import DEFAULT_BLOCK_SIZE, PatternBlock, iter_blocks, mask_for
from .fault_list import FaultList
from .fault_sim import FaultSimulator, check_strict_patterns
from .models import TransitionFault


def derive_capture_patterns(
    circuit: Circuit,
    launch_patterns: Sequence[Mapping[str, int]],
    pulse_order: Optional[Sequence[Sequence[str]]] = None,
    hold_cells: Optional[Sequence[str]] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> list[dict[str, int]]:
    """Compute the capture-cycle stimulus for each launch pattern.

    Parameters
    ----------
    circuit:
        The (BIST-ready) netlist.
    launch_patterns:
        Per-pattern stimulus: primary inputs and flop outputs (the scan-loaded
        state), exactly what the shift window establishes.
    pulse_order:
        Ordered groups of clock domains receiving their *first* capture pulse,
        e.g. ``[["clk1"], ["clk2"]]`` for the staggered two-domain capture of
        Fig. 2.  ``None`` pulses every domain simultaneously.
    hold_cells:
        Flops that keep their scan-loaded value through the capture window.
        Input wrapper cells operate in hold mode during self-test (the pad
        value is unknown/external), so the flow passes them here.

    Returns
    -------
    list
        One stimulus dict per launch pattern describing the circuit state
        after the launch pulse(s): same primary inputs, flop outputs replaced
        by the captured values, applied domain group by domain group so that a
        later group sees the already-updated state of an earlier group (this
        is where cross-domain logic differs from the simultaneous case).
    """
    kernel = PackedSimulator(circuit).kernel
    if pulse_order is None:
        pulse_order = [circuit.clock_domains()]
    held = set(hold_cells or ())
    net_id = kernel.net_id
    # Per pulse group: (flop Q net ID, flop D net ID) pairs updated by the pulse.
    group_updates: list[list[tuple[int, int]]] = []
    for group in pulse_order:
        group_set = set(group)
        group_updates.append(
            [
                (net_id[flop.name], net_id[flop.inputs[0]])
                for flop in circuit.flops()
                if flop.clock_domain in group_set and flop.name not in held
            ]
        )
    results: list[dict[str, int]] = []
    stimulus_nets = circuit.stimulus_nets()
    stimulus_ids = [net_id[net] for net in stimulus_nets]
    table = kernel.make_table()
    for block in iter_blocks(launch_patterns, block_size=block_size, nets=stimulus_nets):
        num = block.num_patterns
        mask = mask_for(num)
        kernel.set_stimulus(table, block.assignments, mask)
        for updates in group_updates:
            kernel.evaluate(table, mask)
            # Snapshot the captured D values before applying them, so chained
            # flops within one pulse group capture the pre-pulse state.
            captured = [(q_id, table[d_id]) for q_id, d_id in updates]
            for q_id, word in captured:
                table[q_id] = word
        for index in range(num):
            results.append(
                {
                    net: (table[nid] >> index) & 1
                    for net, nid in zip(stimulus_nets, stimulus_ids)
                }
            )
    return results


@dataclass(frozen=True)
class TransitionSimShardState:
    """Pickleable shard state for campaign fan-out of transition-fault simulation.

    Mirrors :class:`~repro.faults.fault_sim.FaultSimShardState`: a worker
    process rebuilds the full launch-on-capture engine (compiled kernel plus
    stuck-at observability machinery) from the circuit, the observation nets,
    and the canonical fault ordering that shard tasks index into.
    """

    circuit: Circuit
    observe_nets: tuple[str, ...]
    faults: tuple[TransitionFault, ...]
    #: Execution backend the shard worker compiles ("python" or "numpy").
    sim_backend: str = PYTHON_BACKEND
    #: Peak scan-memory budget every pooled worker obeys (numpy backend;
    #: ``None`` = unbounded), mirroring ``FaultSimShardState``.
    sim_memory_budget_mb: Optional[float] = None

    def build_simulator(self) -> "TransitionFaultSimulator":
        """Compile a fresh :class:`TransitionFaultSimulator` for this state."""
        return TransitionFaultSimulator(
            self.circuit,
            list(self.observe_nets),
            backend=self.sim_backend,
            memory_budget_mb=self.sim_memory_budget_mb,
        )


@dataclass
class TransitionSimulationResult:
    """Outcome of a transition-fault campaign."""

    fault_list: FaultList
    pairs_simulated: int
    coverage_curve: list[tuple[int, float]] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Final transition-fault coverage in [0, 1]."""
        return self.fault_list.coverage()


class _NumpyPairScan:
    """Compiled launch/capture scan state for one canonical transition order.

    Activation is vectorised across faults (one gather of the launch and
    capture site rows plus a select on the slow-to-rise mask); observability
    reuses the stuck-at engine's fault-vectorised scan over the equivalent
    stuck-at faults, compiled positionally so duplicate equivalents are
    harmless.
    """

    def __init__(self, simulator: "TransitionFaultSimulator", faults: tuple) -> None:
        stuck = simulator.stuck_engine
        self.faults = faults
        self.stuck_scan = stuck._numpy_scan(
            tuple(fault.equivalent_stuck_at() for fault in faults)
        )
        self.np_kernel = self.stuck_scan.np_kernel
        net_id = stuck.kernel.net_id
        circuit = simulator.circuit
        self.site_ids = _np.fromiter(
            (net_id[fault.faulted_net(circuit)] for fault in faults),
            dtype=_np.intp,
            count=len(faults),
        )
        self.slow_to_rise = _np.fromiter(
            (fault.slow_to_rise for fault in faults),
            dtype=bool,
            count=len(faults),
        )
        # Per-width launch tables, bounded to the two most-recent widths so
        # a session mixing block sizes never holds every width it touched.
        self._launch_tables = width_cache()

    def launch_table_for(self, num_words: int):
        """The (cached) launch-value bit-plane table for one width."""
        return self._launch_tables.get_or_build(
            num_words, lambda: self.np_kernel.make_table(num_words)
        )

    def activation_planes(self, launch_table, capture_table, mask_plane):
        """Per-fault activation rows: launch/capture transition at the site."""
        launch = launch_table[self.site_ids]
        capture = capture_table[self.site_ids]
        rise = ~launch & capture
        fall = launch & ~capture
        return _np.where(self.slow_to_rise[:, None], rise, fall) & mask_plane


class TransitionFaultSimulator:
    """Launch-on-capture transition fault simulator built on the stuck-at engine.

    ``backend`` mirrors :class:`~repro.faults.fault_sim.FaultSimulator`:
    ``"python"`` (default oracle) or ``"numpy"`` (vectorised activation plus
    the fault-vectorised stuck-at observability scan); detection results are
    bit-identical across backends.
    """

    def __init__(
        self,
        circuit: Circuit,
        observe_nets: Optional[Sequence[str]] = None,
        backend: str = PYTHON_BACKEND,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        self.circuit = circuit
        self.stuck_engine = FaultSimulator(
            circuit, observe_nets, backend=backend,
            memory_budget_mb=memory_budget_mb,
        )
        self.backend = self.stuck_engine.backend
        self.simulator = self.stuck_engine.simulator
        # Most-recently compiled numpy pair-scan state: (fault tuple, scan).
        self._np_pair_scan: Optional[tuple[tuple, _NumpyPairScan]] = None

    def add_observation_net(self, net: str) -> None:
        """Add an observation point (shared with the stuck-at engine)."""
        self.stuck_engine.add_observation_net(net)
        self._np_pair_scan = None

    def _numpy_pair_scan(self, faults: tuple) -> _NumpyPairScan:
        cached = self._np_pair_scan
        if cached is not None and cached[0] == faults:
            return cached[1]
        scan = _NumpyPairScan(self, faults)
        self._np_pair_scan = (faults, scan)
        return scan

    def _np_pair_pass(
        self,
        scan: _NumpyPairScan,
        launch_block: PatternBlock,
        capture_block: PatternBlock,
    ):
        """Load and forward-evaluate one launch/capture block pair.

        The single home of the numpy pair-block setup, shared by the serial
        pair simulation and the shard primitive (mirroring the python
        backend's `_scan_pair_block` discipline).  The capture values land in
        the stuck scan's table (good rows + cone slots), the launch values in
        a plain net-rows table.
        """
        num = launch_block.num_patterns
        mask = mask_for(num)
        num_words = words_for(num)
        np_kernel = scan.np_kernel
        mask_plane = np_kernel.mask_plane(mask, num_words)
        capture_table = scan.stuck_scan.table_for(num_words)
        np_kernel.set_stimulus(capture_table, capture_block.assignments, mask, num_words)
        np_kernel.evaluate(capture_table, mask_plane)
        launch_table = scan.launch_table_for(num_words)
        np_kernel.set_stimulus(launch_table, launch_block.assignments, mask, num_words)
        np_kernel.evaluate(launch_table, mask_plane)
        return launch_table, capture_table, mask_plane, num_words

    def _scan_pair_block_numpy(
        self,
        scan: _NumpyPairScan,
        active: list[int],
        launch_table,
        capture_table,
        mask_plane,
        num_words: int,
        drop_detected: bool = True,
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Positional ``"numpy"`` form of :meth:`_scan_pair_block`.

        ``capture_table`` is the stuck scan state's table (capture-cycle good
        rows followed by the cone slot rows); activation rows are computed
        for the whole canonical order, faults with a live transition feed the
        vectorised stuck-at observability scan, and the per-fault detection
        masks (activation AND observation) are bit-identical to the python
        pair scan.
        """
        activation = scan.activation_planes(launch_table, capture_table, mask_plane)
        activated = activation.any(axis=1)
        candidates = [position for position in active if activated[position]]
        if candidates:
            rows, resim_evals = scan.stuck_scan.scan.scan_positions(
                capture_table, mask_plane, num_words, candidates
            )
            self.stuck_engine.gate_evals += resim_evals
        else:
            rows = {}
        detections: list[tuple[int, int]] = []
        still_active: list[int] = []
        for position in active:
            if not activated[position]:
                still_active.append(position)
                continue
            row = rows.get(position)
            detection = (
                plane_to_word(activation[position] & row) if row is not None else 0
            )
            if detection:
                first_bit = (detection & -detection).bit_length() - 1
                detections.append((position, first_bit))
                if not drop_detected:
                    still_active.append(position)
            else:
                still_active.append(position)
        return detections, still_active

    def _scan_pair_block(
        self,
        active: list[TransitionFault],
        site_ids: Mapping[TransitionFault, int],
        good_launch: list[int],
        good_capture: list[int],
        num: int,
        drop_detected: bool = True,
    ) -> tuple[list[tuple[TransitionFault, int]], list[TransitionFault]]:
        """One launch/capture pass of all ``active`` faults over a block pair.

        Returns ``(detections, still_active)`` with detections as
        ``(fault, first detecting bit within the block)``.  Single home of
        the activation/observation logic, shared by the serial pair
        simulation (:meth:`simulate_pairs`) and the sharded scan
        (:meth:`first_detections`) so oracle and shard primitive cannot
        drift apart.
        """
        mask = mask_for(num)
        detections: list[tuple[TransitionFault, int]] = []
        still_active: list[TransitionFault] = []
        for fault in active:
            site_id = site_ids[fault]
            launch_value = good_launch[site_id]
            capture_value = good_capture[site_id]
            if fault.slow_to_rise:
                activation = (~launch_value & capture_value) & mask
            else:
                activation = (launch_value & ~capture_value) & mask
            if not activation:
                still_active.append(fault)
                continue
            observation = self.stuck_engine.detection_mask_ids(
                fault.equivalent_stuck_at(), good_capture, num
            )
            detection = activation & observation
            if detection:
                first_bit = (detection & -detection).bit_length() - 1
                detections.append((fault, first_bit))
                if not drop_detected:
                    still_active.append(fault)
            else:
                still_active.append(fault)
        return detections, still_active

    def simulate_pairs(
        self,
        fault_list: FaultList,
        launch_patterns: Sequence[Mapping[str, int]],
        capture_patterns: Sequence[Mapping[str, int]],
        block_size: int = DEFAULT_BLOCK_SIZE,
        drop_detected: bool = True,
        pattern_offset: int = 0,
        strict: bool = False,
    ) -> TransitionSimulationResult:
        """Simulate aligned launch/capture pattern pairs against transition faults.

        ``launch_patterns[i]`` and ``capture_patterns[i]`` form pair *i*.
        With ``strict``, any launch or capture pattern that assigns a
        non-stimulus net (a misspelled name) *or* omits a stimulus net --
        either of which would otherwise silently read as 0 and fake a
        transition -- raises
        :class:`~repro.simulation.kernel.StrictStimulusError`.
        """
        if len(launch_patterns) != len(capture_patterns):
            raise ValueError("launch and capture pattern lists must have equal length")
        if strict:
            check_strict_patterns(
                self.circuit, launch_patterns, require_complete=True, label="launch pattern"
            )
            check_strict_patterns(
                self.circuit, capture_patterns, require_complete=True, label="capture pattern"
            )
        result = TransitionSimulationResult(fault_list, len(launch_patterns))
        active = [f for f in fault_list.undetected() if isinstance(f, TransitionFault)]
        simulated = 0
        stimulus_nets = self.circuit.stimulus_nets()
        launch_blocks = iter_blocks(launch_patterns, block_size=block_size, nets=stimulus_nets)
        capture_blocks = iter_blocks(capture_patterns, block_size=block_size, nets=stimulus_nets)
        if self.backend == NUMPY_BACKEND:
            faults = tuple(active)
            scan = self._numpy_pair_scan(faults)
            positions = list(range(len(faults)))
            scan.stuck_scan.scan.ensure_live(positions)
            for launch_block, capture_block in zip(launch_blocks, capture_blocks):
                num = launch_block.num_patterns
                launch_table, capture_table, mask_plane, num_words = (
                    self._np_pair_pass(scan, launch_block, capture_block)
                )
                detections_np, positions = self._scan_pair_block_numpy(
                    scan,
                    positions,
                    launch_table,
                    capture_table,
                    mask_plane,
                    num_words,
                    drop_detected,
                )
                for position, first_bit in detections_np:
                    fault_list.mark_detected(
                        faults[position], pattern_offset + simulated + first_bit
                    )
                simulated += num
                result.coverage_curve.append(
                    (pattern_offset + simulated, fault_list.coverage())
                )
            return result
        kernel = self.simulator.kernel
        net_id = kernel.net_id
        site_ids = {
            fault: net_id[fault.faulted_net(self.circuit)] for fault in active
        }
        good_launch = kernel.make_table()
        good_capture = kernel.make_table()
        for launch_block, capture_block in zip(launch_blocks, capture_blocks):
            num = launch_block.num_patterns
            mask = mask_for(num)
            kernel.set_stimulus(good_launch, launch_block.assignments, mask)
            kernel.evaluate(good_launch, mask)
            kernel.set_stimulus(good_capture, capture_block.assignments, mask)
            kernel.evaluate(good_capture, mask)
            detections, active = self._scan_pair_block(
                active, site_ids, good_launch, good_capture, num, drop_detected
            )
            for fault, first_bit in detections:
                fault_list.mark_detected(fault, pattern_offset + simulated + first_bit)
            simulated += num
            result.coverage_curve.append((pattern_offset + simulated, fault_list.coverage()))
        return result

    def simulate_with_derived_capture(
        self,
        fault_list: FaultList,
        launch_patterns: Sequence[Mapping[str, int]],
        pulse_order: Optional[Sequence[Sequence[str]]] = None,
        hold_cells: Optional[Sequence[str]] = None,
        strict: bool = False,
        **kwargs: object,
    ) -> TransitionSimulationResult:
        """Convenience: derive the capture patterns from the launch patterns, then simulate.

        ``strict`` is checked *before* deriving the capture patterns: a
        misspelled or missing launch net would otherwise flow through
        :func:`derive_capture_patterns` as a silent 0 and corrupt every
        derived capture state.  Derived capture patterns are complete over
        the stimulus nets by construction, so one validation pass over the
        launch list suffices.
        """
        if strict:
            check_strict_patterns(
                self.circuit, launch_patterns, require_complete=True, label="launch pattern"
            )
        capture_patterns = derive_capture_patterns(
            self.circuit, launch_patterns, pulse_order, hold_cells
        )
        return self.simulate_pairs(
            fault_list, launch_patterns, capture_patterns, **kwargs
        )

    # ------------------------------------------------------------------ #
    # Sharded-campaign primitives
    # ------------------------------------------------------------------ #
    def shard_state(self, faults: Sequence[TransitionFault]) -> TransitionSimShardState:
        """Pickleable shard state for campaign fan-out over ``faults``."""
        return TransitionSimShardState(
            circuit=self.circuit,
            observe_nets=tuple(self.stuck_engine.observe_nets),
            faults=tuple(faults),
            sim_backend=self.backend,
            sim_memory_budget_mb=self.stuck_engine.memory_budget_mb,
        )

    def first_detections(
        self,
        faults: Sequence[TransitionFault],
        pair_blocks: Sequence[tuple[int, PatternBlock, PatternBlock]],
    ) -> dict[TransitionFault, int]:
        """First-detection scan over packed launch/capture block pairs.

        ``pair_blocks`` is a stream of ``(global pair offset, launch block,
        capture block)`` triples.  Per-fault results are independent of every
        other fault, so fault/pattern sharding plus min-merge reproduces the
        serial pair simulation bit for bit (the shard primitive of the
        campaign runner).
        """
        detections: dict[TransitionFault, int] = {}
        if self.backend == NUMPY_BACKEND:
            fault_order = tuple(faults)
            scan = self._numpy_pair_scan(fault_order)
            positions = list(range(len(fault_order)))
            scan.stuck_scan.scan.ensure_live(positions)
            for offset, launch_block, capture_block in pair_blocks:
                if not positions:
                    break
                if launch_block.num_patterns != capture_block.num_patterns:
                    raise ValueError("launch and capture blocks must pair up 1:1")
                launch_table, capture_table, mask_plane, num_words = (
                    self._np_pair_pass(scan, launch_block, capture_block)
                )
                found_np, positions = self._scan_pair_block_numpy(
                    scan, positions, launch_table, capture_table, mask_plane, num_words
                )
                for position, first_bit in found_np:
                    detections[fault_order[position]] = offset + first_bit
            return detections
        active = list(faults)
        kernel = self.simulator.kernel
        net_id = kernel.net_id
        site_ids = {
            fault: net_id[fault.faulted_net(self.circuit)] for fault in active
        }
        good_launch = kernel.make_table()
        good_capture = kernel.make_table()
        for offset, launch_block, capture_block in pair_blocks:
            if not active:
                break
            if launch_block.num_patterns != capture_block.num_patterns:
                raise ValueError("launch and capture blocks must pair up 1:1")
            num = launch_block.num_patterns
            mask = mask_for(num)
            kernel.set_stimulus(good_launch, launch_block.assignments, mask)
            kernel.evaluate(good_launch, mask)
            kernel.set_stimulus(good_capture, capture_block.assignments, mask)
            kernel.evaluate(good_capture, mask)
            found, active = self._scan_pair_block(
                active, site_ids, good_launch, good_capture, num
            )
            for fault, first_bit in found:
                detections[fault] = offset + first_bit
        return detections
