"""Fault-simulation-guided observation-point insertion (the paper's method).

Section 2.1: *"some observation points are inserted based on the results of
fault simulation, instead of observability calculation commonly used in
previous logic BIST schemes.  In addition, no control point is used in order
to meet strict performance requirements for IP cores."*

The algorithm implemented here:

1. fault-simulate a sample of the random patterns and keep the faults that
   remain undetected (the random-pattern-resistant population),
2. for those faults, profile *where their effects travel*
   (:meth:`repro.faults.fault_sim.FaultSimulator.fault_effect_profile`):
   a net that frequently carries the effect of an undetected fault is a spot
   where an observation point would convert that fault into a detected one,
3. greedily pick nets maximising the number of newly covered faults
   (weighted set cover) until the test-point budget is exhausted,
4. physically realise each observation point as a dedicated scan cell whose
   D input taps the chosen net -- the cell joins a scan chain and its content
   is compacted into the MISR like any other response bit, so it costs area
   but adds **zero** delay to functional paths (unlike control points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..faults.fault_list import FaultList
from ..faults.fault_sim import FaultSimulator
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..netlist.library import CellLibrary


@dataclass
class ObservationPointPlan:
    """Result of observation-point selection.

    Attributes
    ----------
    nets:
        Chosen tap locations, in selection order (most valuable first).
    covered_faults:
        Mapping net -> faults that become observable thanks to that net
        (credited greedily, so each fault appears under exactly one net).
    resistant_fault_count:
        Size of the undetected-fault population the selection started from.
    """

    nets: list[str] = field(default_factory=list)
    covered_faults: dict[str, list[object]] = field(default_factory=dict)
    resistant_fault_count: int = 0

    @property
    def total_covered(self) -> int:
        """Number of previously-undetected faults the plan makes observable."""
        return sum(len(faults) for faults in self.covered_faults.values())

    def area_overhead(self, library: Optional[CellLibrary] = None) -> float:
        """Added area in gate equivalents (one scan cell per observation point)."""
        library = library or CellLibrary()
        return len(self.nets) * library.scan_cell_area()


@dataclass
class FaultSimGuidedObservationTpi:
    """The paper's fault-simulation-guided observation-point selector."""

    circuit: Circuit
    #: Maximum number of observation points to insert.
    budget: int = 32
    #: How many of the supplied patterns to use for effect profiling.
    profile_patterns: int = 64
    #: Ignore candidate nets whose effect count (over the profiled patterns)
    #: is below this threshold -- they would be observation points that fire
    #: too rarely to help a random-pattern BIST session.
    min_effect_count: int = 1

    def select(
        self,
        fault_list: FaultList,
        patterns: Sequence[Mapping[str, int]],
        observe_nets: Optional[Sequence[str]] = None,
    ) -> ObservationPointPlan:
        """Choose observation points for the currently-undetected faults.

        Parameters
        ----------
        fault_list:
            Fault list *after* the preliminary random-pattern fault simulation;
            only its undetected faults drive the selection (the fault list is
            not modified).
        patterns:
            Random patterns; the first :attr:`profile_patterns` of them are
            used for effect profiling.
        observe_nets:
            Current observation nets (defaults to the circuit's own).
        """
        simulator = FaultSimulator(self.circuit, observe_nets)
        resistant = fault_list.undetected()
        plan = ObservationPointPlan(resistant_fault_count=len(resistant))
        if not resistant or self.budget <= 0:
            return plan

        sample = list(patterns[: self.profile_patterns])
        profile = simulator.fault_effect_profile(resistant, sample)

        # Greedy weighted set cover: each round pick the net covering the most
        # not-yet-covered faults; ties broken towards nets with higher total
        # effect counts (more frequently sensitised), then by name for
        # determinism.
        uncovered: set[object] = set(resistant)
        candidates: dict[str, dict[object, int]] = {
            net: dict(per_fault) for net, per_fault in profile.items()
        }
        while len(plan.nets) < self.budget and uncovered and candidates:
            best_net = None
            best_key: tuple[int, int, str] | None = None
            for net, per_fault in candidates.items():
                eligible = {
                    fault: count
                    for fault, count in per_fault.items()
                    if fault in uncovered and count >= self.min_effect_count
                }
                if not eligible:
                    continue
                key = (len(eligible), sum(eligible.values()), net)
                if best_key is None or (key[0], key[1]) > (best_key[0], best_key[1]) or (
                    (key[0], key[1]) == (best_key[0], best_key[1]) and net < best_key[2]
                ):
                    best_key = key
                    best_net = net
            if best_net is None:
                break
            newly_covered = [
                fault
                for fault, count in candidates[best_net].items()
                if fault in uncovered and count >= self.min_effect_count
            ]
            plan.nets.append(best_net)
            plan.covered_faults[best_net] = newly_covered
            uncovered.difference_update(newly_covered)
            del candidates[best_net]
        return plan


def apply_observation_points(
    circuit: Circuit,
    nets: Sequence[str],
    clock_domain: Optional[str] = None,
    prefix: str = "obs_point",
) -> list[str]:
    """Physically insert observation points as dedicated scan cells.

    Each chosen net gets a new DFF whose D input taps the net; the flop is
    annotated with ``observation_point=True`` so that scan-chain construction
    includes it and the reporting layer can count test points.  The circuit is
    modified in place; the new flop names are returned.

    Parameters
    ----------
    circuit:
        Netlist to modify.
    nets:
        Tap locations (typically ``ObservationPointPlan.nets``).
    clock_domain:
        Clock domain for the new cells.  Defaults to the domain of the
        majority of flops in each net's fanout cone (falling back to the
        circuit's first domain) so the added cell never creates a new
        cross-domain capture path.
    """
    created: list[str] = []
    domains = circuit.clock_domains() or ["clk"]
    for index, net in enumerate(nets):
        if net not in circuit.gates:
            raise KeyError(f"unknown net {net!r}")
        domain = clock_domain
        if domain is None:
            cone = circuit.fanout_cone(net)
            domain_votes: dict[str, int] = {}
            for name in cone:
                gate = circuit.gate(name)
                if gate.is_flop and gate.clock_domain:
                    domain_votes[gate.clock_domain] = domain_votes.get(gate.clock_domain, 0) + 1
            domain = (
                max(domain_votes, key=lambda d: (domain_votes[d], d))
                if domain_votes
                else domains[0]
            )
        name = f"{prefix}_{index}_{net}"
        circuit.add_gate(
            name,
            GateType.DFF,
            [net],
            clock_domain=domain,
            observation_point=True,
        )
        created.append(name)
    return created


def observation_point_flops(circuit: Circuit) -> list[str]:
    """Names of flops previously inserted by :func:`apply_observation_points`."""
    return [
        gate.name
        for gate in circuit.flops()
        if gate.attributes.get("observation_point")
    ]
