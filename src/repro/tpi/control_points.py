"""Control-point insertion -- provided only as an ablation.

The paper explicitly avoids control points: *"no control point is used in
order to meet strict performance requirements for IP cores"*, because a
control point inserts an AND/OR gate **in series** with a functional path and
therefore adds delay.  To quantify that trade-off, this module implements the
classical control-point transform so the ablation benchmark can measure

* the coverage a given number of control points would buy, and
* the functional-path delay penalty they would cost (via the cell library),

and show that observation-only insertion reaches the paper's coverage targets
without the penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..netlist.library import CellLibrary
from ..testability.cop import compute_cop


@dataclass
class ControlPointPlan:
    """Selected control points and the functional-delay cost of inserting them."""

    #: (net, forced value) pairs: value 1 uses an OR gate, value 0 an AND gate.
    points: list[tuple[str, int]] = field(default_factory=list)
    #: Extra series delay (ns) added to each modified functional path.
    delay_penalty_ns: dict[str, float] = field(default_factory=dict)

    @property
    def total_delay_penalty_ns(self) -> float:
        """Sum of per-net series-delay penalties."""
        return sum(self.delay_penalty_ns.values())


@dataclass
class ControlPointInserter:
    """Probability-driven control-point selector and inserter (ablation only)."""

    circuit: Circuit
    budget: int = 16
    library: CellLibrary = field(default_factory=CellLibrary)

    def select(self, exclude: Optional[Sequence[str]] = None) -> ControlPointPlan:
        """Pick nets with the most skewed signal probability.

        A net stuck near probability 0 gets a control-to-1 point (OR), a net
        stuck near 1 gets a control-to-0 point (AND): the classical COP-driven
        heuristic.
        """
        excluded = set(exclude or ())
        cop = compute_cop(self.circuit)
        plan = ControlPointPlan()
        scored: list[tuple[float, str, int]] = []
        for name, measures in cop.items():
            gate = self.circuit.gate(name)
            if gate.is_primary_input or gate.is_flop or gate.gate_type.is_source:
                continue
            if name in excluded:
                continue
            # Skew = how far from 0.5; direction picks the forced value.
            if measures.p1 <= 0.5:
                scored.append((measures.p1, name, 1))
            else:
                scored.append((1.0 - measures.p1, name, 0))
        scored.sort()
        for skew, name, value in scored[: self.budget]:
            plan.points.append((name, value))
            gate_type = GateType.OR if value == 1 else GateType.AND
            plan.delay_penalty_ns[name] = self.library.delay_ns(gate_type, 2)
        return plan

    def apply(self, plan: ControlPointPlan, enable_net: str = "cp_test_enable") -> list[str]:
        """Insert the control-point gates into the circuit (in place).

        A single test-enable input gates every control point: when the enable
        is 0 the circuit behaves functionally (modulo the added gate delay),
        when it is 1 each controlled net is forced to its chosen value.
        Returns the names of the inserted gates.
        """
        circuit = self.circuit
        if enable_net not in circuit.gates:
            circuit.add_input(enable_net)
        inserted: list[str] = []
        for index, (net, value) in enumerate(plan.points):
            new_name = f"cp_{index}_{net}"
            if value == 1:
                # Force-to-1: OR(original, enable).
                circuit.add_gate(new_name, GateType.OR, [net, enable_net], control_point=True)
            else:
                # Force-to-0: AND(original, NOT enable).
                inv_name = f"cp_{index}_{net}_n"
                if inv_name not in circuit.gates:
                    circuit.add_gate(inv_name, GateType.NOT, [enable_net])
                circuit.add_gate(new_name, GateType.AND, [net, inv_name], control_point=True)
            # Rewire every original consumer of the net to the control point
            # (deduplicated: one rewiring call covers every pin of a consumer).
            for consumer in dict.fromkeys(circuit.fanout(net)):
                if consumer == new_name or consumer.startswith(f"cp_{index}_{net}"):
                    continue
                circuit.replace_input_net(consumer, net, new_name)
            inserted.append(new_name)
        return inserted
