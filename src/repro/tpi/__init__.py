"""Test point insertion (S6).

Public API:

* :class:`~repro.tpi.observation_points.FaultSimGuidedObservationTpi` -- the
  paper's fault-simulation-guided observation-point selector,
* :func:`~repro.tpi.observation_points.apply_observation_points` /
  :func:`~repro.tpi.observation_points.observation_point_flops`,
* :class:`~repro.tpi.observability_tpi.ObservabilityGuidedTpi` -- the
  SCOAP/COP baseline selector (ablation A1),
* :class:`~repro.tpi.control_points.ControlPointInserter` -- control points,
  implemented only to quantify the delay penalty the paper avoids.
"""

from .observation_points import (
    FaultSimGuidedObservationTpi,
    ObservationPointPlan,
    apply_observation_points,
    observation_point_flops,
)
from .observability_tpi import ObservabilityGuidedTpi
from .control_points import ControlPointInserter, ControlPointPlan

__all__ = [
    "FaultSimGuidedObservationTpi",
    "ObservationPointPlan",
    "apply_observation_points",
    "observation_point_flops",
    "ObservabilityGuidedTpi",
    "ControlPointInserter",
    "ControlPointPlan",
]
