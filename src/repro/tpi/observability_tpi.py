"""Observability-calculation-based observation-point insertion (baseline).

This is the method the paper contrasts itself against: pick test-point
locations from static testability measures (SCOAP observability or COP
propagation probability) *without* running fault simulation.  It is cheaper to
compute but blind to which faults the random patterns actually miss, which is
exactly what the ablation benchmark (A1) measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..netlist.circuit import Circuit
from ..testability.cop import compute_cop
from ..testability.scoap import compute_scoap
from .observation_points import ObservationPointPlan


@dataclass
class ObservabilityGuidedTpi:
    """Static-testability-driven observation-point selector.

    Attributes
    ----------
    circuit:
        The netlist.
    budget:
        Maximum number of observation points.
    method:
        ``"scoap"`` ranks candidates by highest SCOAP CO (hardest to observe);
        ``"cop"`` ranks by lowest COP observability.
    """

    circuit: Circuit
    budget: int = 32
    method: str = "scoap"

    def select(self, exclude: Optional[Sequence[str]] = None) -> ObservationPointPlan:
        """Choose the ``budget`` hardest-to-observe combinational nets."""
        if self.method not in ("scoap", "cop"):
            raise ValueError("method must be 'scoap' or 'cop'")
        excluded = set(exclude or ())
        plan = ObservationPointPlan()
        candidates: list[tuple[float, str]] = []
        if self.method == "scoap":
            measures = compute_scoap(self.circuit)
            for name, m in measures.items():
                gate = self.circuit.gate(name)
                if gate.is_primary_input or gate.is_flop or gate.gate_type.is_source:
                    continue
                if name in excluded:
                    continue
                candidates.append((-float(m.co), name))
        else:
            cop = compute_cop(self.circuit)
            for name, m in cop.items():
                gate = self.circuit.gate(name)
                if gate.is_primary_input or gate.is_flop or gate.gate_type.is_source:
                    continue
                if name in excluded:
                    continue
                candidates.append((float(m.observability), name))
        candidates.sort()
        plan.nets = [name for _, name in candidates[: self.budget]]
        plan.covered_faults = {}
        return plan
